"""Weighted digraphs and the path-query ↔ graph reduction.

A :class:`Digraph` is the minimal structure the k-shortest-path algorithms
need: adjacency with edge weights, plus single-source shortest-path *to* a
target (computed on the reversed graph) — the potential function both
Hoffman–Pavley and REA build on.

:func:`path_query_as_graph` realizes the reduction the tutorial draws
between join processing and path problems: a path query
R1(A1,A2) ⋈ ... ⋈ Rℓ(Aℓ,Aℓ+1) over a database becomes a layered DAG with
one node per (layer, value) plus source/target; every s-t path corresponds
to exactly one query answer and path cost equals the answer's total weight.
"""

from __future__ import annotations

import heapq
from typing import Any, Hashable, Iterable, Optional

from repro.data.database import Database
from repro.query.cq import ConjunctiveQuery, QueryError


class Digraph:
    """A weighted directed multigraph with hashable nodes."""

    def __init__(self) -> None:
        self._out: dict[Hashable, list[tuple[Hashable, float, Any]]] = {}
        self._in: dict[Hashable, list[tuple[Hashable, float, Any]]] = {}

    def add_node(self, node: Hashable) -> None:
        """Ensure a node exists (isolated nodes are allowed)."""
        self._out.setdefault(node, [])
        self._in.setdefault(node, [])

    def add_edge(
        self, source: Hashable, target: Hashable, weight: float, label: Any = None
    ) -> None:
        """Add a directed edge; parallel edges are kept (multigraph)."""
        self.add_node(source)
        self.add_node(target)
        self._out[source].append((target, float(weight), label))
        self._in[target].append((source, float(weight), label))

    def nodes(self) -> Iterable[Hashable]:
        return self._out.keys()

    def out_edges(self, node: Hashable) -> list[tuple[Hashable, float, Any]]:
        """Outgoing ``(target, weight, label)`` triples."""
        return self._out.get(node, [])

    def in_edges(self, node: Hashable) -> list[tuple[Hashable, float, Any]]:
        """Incoming ``(source, weight, label)`` triples."""
        return self._in.get(node, [])

    def num_edges(self) -> int:
        return sum(len(edges) for edges in self._out.values())

    # ------------------------------------------------------------------
    # Shortest-path potentials
    # ------------------------------------------------------------------
    def shortest_to(self, target: Hashable) -> dict[Hashable, float]:
        """Dijkstra distances *to* ``target`` (on the reversed graph).

        Requires nonnegative weights; unreachable nodes are absent from the
        returned map.  This is the h(v) potential of both k-shortest-path
        algorithms.
        """
        dist: dict[Hashable, float] = {target: 0.0}
        heap: list[tuple[float, int, Hashable]] = [(0.0, 0, target)]
        tick = 1
        settled: set[Hashable] = set()
        while heap:
            d, _, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            for source, weight, _ in self.in_edges(node):
                if weight < 0:
                    raise ValueError("negative edge weights are not supported")
                candidate = d + weight
                if candidate < dist.get(source, float("inf")):
                    dist[source] = candidate
                    heapq.heappush(heap, (candidate, tick, source))
                    tick += 1
        return dist

    def shortest_path(
        self, source: Hashable, target: Hashable
    ) -> Optional[tuple[list[Hashable], float]]:
        """One shortest s-t path (nodes, cost), or None if unreachable."""
        dist = self.shortest_to(target)
        if source not in dist:
            return None
        path = [source]
        node = source
        cost = dist[source]
        while node != target:
            for nxt, weight, _ in self.out_edges(node):
                if nxt in dist and abs(weight + dist[nxt] - dist[node]) < 1e-12:
                    path.append(nxt)
                    node = nxt
                    break
            else:  # pragma: no cover - dist guarantees a next hop exists
                raise RuntimeError("shortest-path reconstruction failed")
        return path, cost


#: Distinguished node names of the layered reduction.
SOURCE = "__source__"
TARGET = "__target__"


def path_query_as_graph(
    db: Database, query: ConjunctiveQuery
) -> tuple[Digraph, Hashable, Hashable]:
    """Compile a path-query database into a layered s-t digraph.

    Expects the canonical chain shape produced by
    :func:`repro.query.cq.path_query`: binary atoms R_i(A_i, A_{i+1}).
    Nodes are ``(layer, value)``; the edge for tuple (a, b) of R_i runs
    from (i, a) to (i+1, b) with the tuple's weight.  Source/target edges
    have weight 0, so s-t path cost = query answer weight.
    """
    query.validate(db)
    for i, atom in enumerate(query.atoms):
        if len(atom.variables) != 2:
            raise QueryError(f"atom {atom} is not binary; not a path query")
        if i > 0 and atom.variables[0] != query.atoms[i - 1].variables[1]:
            raise QueryError(f"atom {atom} does not chain; not a path query")

    graph = Digraph()
    length = len(query.atoms)
    first_values = set()
    last_values = set()
    for i, atom in enumerate(query.atoms):
        relation = db[atom.relation]
        for row, weight in zip(relation.rows, relation.weights):
            graph.add_edge((i, row[0]), (i + 1, row[1]), weight, label=row)
            if i == 0:
                first_values.add(row[0])
            if i == length - 1:
                last_values.add(row[1])
    for value in sorted(first_values, key=repr):
        graph.add_edge(SOURCE, (0, value), 0.0)
    for value in sorted(last_values, key=repr):
        graph.add_edge((length, value), TARGET, 0.0)
    return graph, SOURCE, TARGET


def graph_path_to_answer(path: list[Hashable]) -> tuple:
    """Convert an s-t path of the layered graph back to a query answer row."""
    interior = path[1:-1]
    return tuple(value for _, value in interior)
