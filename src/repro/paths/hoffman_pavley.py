"""Hoffman–Pavley (1959): k-shortest paths by deviations.

The ancestor of the Lawler–Murty any-k family (tutorial Part 3): after one
reverse Dijkstra pass provides the cost-to-target potential h(v) and a
shortest-path tree, every s-t path is encoded by where it *deviates* from
the tree.  A priority queue over deviations pops paths in exact
nondecreasing cost order; each popped path spawns one deviation per
position along its tree suffix — precisely the partition scheme ANYK-PART
applies to join solutions.

Semantics: the algorithm enumerates s-t *walks* (nodes may repeat) that
end at their first arrival at the target; on cyclic graphs the stream is
infinite, so callers bound it with ``k`` or stop iterating.  Parallel
edges are treated as distinct, so the layered-graph reduction of
:mod:`repro.paths.graph` preserves bag semantics.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Optional

from repro.paths.graph import Digraph
from repro.util.counters import Counters
from repro.util.heaps import BinaryHeap


def _tree_suffix(
    graph: Digraph, node: Hashable, target: Hashable, h: dict[Hashable, float]
) -> list[tuple[Hashable, int]]:
    """Shortest-path-tree steps from ``node`` to ``target``.

    Each step is ``(node, out_edge_index)``; the step list is empty when
    ``node`` is already the target.
    """
    steps: list[tuple[Hashable, int]] = []
    current = node
    while current != target:
        edges = graph.out_edges(current)
        for index, (nxt, weight, _) in enumerate(edges):
            if nxt in h and abs(weight + h[nxt] - h[current]) < 1e-12:
                steps.append((current, index))
                current = nxt
                break
        else:  # pragma: no cover - h guarantees a tree edge exists
            raise RuntimeError("suffix reconstruction failed")
    return steps


def hoffman_pavley(
    graph: Digraph,
    source: Hashable,
    target: Hashable,
    k: Optional[int] = None,
    counters: Optional[Counters] = None,
) -> Iterator[tuple[list[Hashable], float]]:
    """Yield s-t paths as ``(node_list, cost)`` in nondecreasing cost."""
    h = graph.shortest_to(target)
    if source not in h:
        return

    queue = BinaryHeap(counters)
    # Candidate: exact prefix (node list ending at the deviation head) plus
    # its cost; priority = prefix cost + h(last node) — the exact cost of
    # the candidate's best completion.
    queue.push(h[source], ([source], 0.0))

    produced = 0
    while queue:
        cost, (prefix, prefix_cost) = queue.pop()
        steps = _tree_suffix(graph, prefix[-1], target, h)
        path = prefix[:-1] + [node for node, _ in steps] + [target]
        if prefix[-1] == target:
            path = list(prefix)
        yield path, cost
        produced += 1
        if k is not None and produced >= k:
            return

        # Deviate at every suffix step: take any out-edge other than the
        # tree edge the emitted path used there.
        walked = prefix[:-1]
        running_cost = prefix_cost
        for node, used_index in steps:
            edges = graph.out_edges(node)
            for index, (nxt, weight, _) in enumerate(edges):
                if counters is not None:
                    counters.tuples_read += 1
                if index == used_index or nxt not in h:
                    continue
                queue.push(
                    running_cost + weight + h[nxt],
                    (walked + [node, nxt], running_cost + weight),
                )
            walked = walked + [node]
            running_cost += edges[used_index][1]
