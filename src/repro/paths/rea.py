"""REA — the Recursive Enumeration Algorithm for k-shortest paths.

Jiménez–Marzal's formulation of the Dreyfus / Bellman–Kalaba "k-th best
policy" recurrences (tutorial Part 3): the k-th shortest s→v path extends
the j-th shortest s→u path by an edge (u, v), for some in-neighbour u and
some j ≤ k.  Each node memoizes its ranked path list and a candidate heap
over ``(in-edge, rank)`` pairs; asking for the next path at the target
recursively forces exactly the prefixes it needs — the same memoized
suffix-sharing structure as ANYK-REC over the T-DP (which the tutorial
notes "appears to have been rediscovered" for conjunctive queries).

Implementation note: successor candidates (the rank-(j+1) extension of a
consumed rank-j prefix) are *deferred* — pushed only when the node is asked
for its next rank — so that the recursive forcing never observes a node
mid-initialization.  With strictly positive cycle weights every recursive
request asks for a strictly cheaper, hence already materialized, path;
zero-weight cycles (where "the k-th path" is degenerate) are out of scope.
DAGs — including the layered path-query reduction — need no restriction.

Semantics match :mod:`repro.paths.hoffman_pavley`: s-t walks in
nondecreasing cost, parallel edges distinct, infinite streams possible on
cyclic graphs.
"""

from __future__ import annotations

import heapq
from typing import Hashable, Iterator, Optional

from repro.paths.graph import Digraph
from repro.util.counters import Counters

#: A ranked path entry: (cost, predecessor node, predecessor rank,
#: predecessor out-edge index).  The source's rank-0 entry is
#: (0.0, None, -1, -1).
Entry = tuple[float, Optional[Hashable], int, int]


class _NodeState:
    """Ranked path list, candidate heap, and deferred-successor cursor."""

    __slots__ = ("paths", "heap", "initialized", "successor_cursor")

    def __init__(self) -> None:
        self.paths: list[Entry] = []
        self.heap: list[tuple[float, int, Hashable, int, int]] = []
        self.initialized = False
        #: paths[:successor_cursor] have had their successor pushed
        self.successor_cursor = 0


class REA:
    """Recursive enumeration of s→v paths for all v, lazily and memoized."""

    def __init__(
        self,
        graph: Digraph,
        source: Hashable,
        counters: Optional[Counters] = None,
    ) -> None:
        self.graph = graph
        self.source = source
        self.counters = counters
        self._states: dict[Hashable, _NodeState] = {}
        self._tick = 0
        self._forward_dijkstra()

    # ------------------------------------------------------------------
    def _state(self, node: Hashable) -> _NodeState:
        state = self._states.get(node)
        if state is None:
            state = _NodeState()
            self._states[node] = state
        return state

    def _forward_dijkstra(self) -> None:
        """Rank-0 (shortest) path per node, with predecessor pointers."""
        dist: dict[Hashable, float] = {self.source: 0.0}
        pred: dict[Hashable, tuple[Hashable, int]] = {}
        heap: list[tuple[float, int, Hashable]] = [(0.0, 0, self.source)]
        tick = 1
        settled: set[Hashable] = set()
        while heap:
            d, _, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            for index, (nxt, weight, _) in enumerate(self.graph.out_edges(node)):
                if weight < 0:
                    raise ValueError("negative edge weights are not supported")
                candidate = d + weight
                if candidate < dist.get(nxt, float("inf")):
                    dist[nxt] = candidate
                    pred[nxt] = (node, index)
                    heapq.heappush(heap, (candidate, tick, nxt))
                    tick += 1
        for node in settled:
            state = self._state(node)
            if node == self.source:
                state.paths.append((0.0, None, -1, -1))
            else:
                predecessor, edge_index = pred[node]
                state.paths.append((dist[node], predecessor, 0, edge_index))

    # ------------------------------------------------------------------
    def _push(
        self,
        state: _NodeState,
        cost: float,
        pred_node: Hashable,
        rank: int,
        edge_index: int,
    ) -> None:
        if self.counters is not None:
            self.counters.heap_ops += 1
        heapq.heappush(state.heap, (cost, self._tick, pred_node, rank, edge_index))
        self._tick += 1

    def _initialize_candidates(self, node: Hashable) -> None:
        """Seed the heap with the rank-0 extension of every in-edge other
        than the one the shortest path used.  Rank-0 predecessor paths all
        exist already (Dijkstra), so initialization never recurses."""
        state = self._state(node)
        state.initialized = True
        best = state.paths[0] if state.paths else None
        occurrences: dict[Hashable, int] = {}
        for pred_node, weight, _ in self.graph.in_edges(node):
            occurrence = occurrences.get(pred_node, 0)
            occurrences[pred_node] = occurrence + 1
            out_index = self._out_index(pred_node, node, occurrence)
            if (
                best is not None
                and best[1] == pred_node
                and best[2] == 0
                and best[3] == out_index
            ):
                continue  # the shortest path's own last step
            pred_state = self._states.get(pred_node)
            if pred_state is None or not pred_state.paths:
                continue  # predecessor unreachable from the source
            self._push(
                state, pred_state.paths[0][0] + weight, pred_node, 0, out_index
            )

    def _out_index(
        self, pred_node: Hashable, node: Hashable, occurrence: int
    ) -> int:
        """Out-edge index of the ``occurrence``-th (pred -> node) edge."""
        count = 0
        for index, (nxt, _, _) in enumerate(self.graph.out_edges(pred_node)):
            if nxt == node:
                if count == occurrence:
                    return index
                count += 1
        raise RuntimeError("in/out edge lists inconsistent")  # pragma: no cover

    def _edge_weight(self, node: Hashable, out_index: int) -> float:
        return self.graph.out_edges(node)[out_index][1]

    def _push_deferred_successors(self, node: Hashable) -> None:
        """Push the rank-(j+1) successor of every consumed entry.

        The cursor advances *before* the recursive forcing, so re-entrant
        requests (positive-weight cycles) see a consistent state; by the
        strictly-decreasing-cost argument they only ever need already
        materialized ranks.
        """
        state = self._state(node)
        while state.successor_cursor < len(state.paths):
            entry = state.paths[state.successor_cursor]
            state.successor_cursor += 1
            _, pred_node, pred_rank, edge_index = entry
            if pred_node is None:
                continue  # the source's rank-0 entry has no predecessor
            pred_entry = self.path_entry(pred_node, pred_rank + 1)
            if pred_entry is None:
                continue  # that in-edge's stream is exhausted
            weight = self._edge_weight(pred_node, edge_index)
            self._push(
                state,
                pred_entry[0] + weight,
                pred_node,
                pred_rank + 1,
                edge_index,
            )

    def path_entry(self, node: Hashable, rank: int) -> Optional[Entry]:
        """The rank-th shortest s→node path entry, produced on demand."""
        state = self._state(node)
        while len(state.paths) <= rank:
            if not state.paths:
                return None  # unreachable node
            if not state.initialized:
                self._initialize_candidates(node)
            self._push_deferred_successors(node)
            if not state.heap:
                return None
            if self.counters is not None:
                self.counters.heap_ops += 1
            cost, _, pred_node, pred_rank, edge_index = heapq.heappop(state.heap)
            state.paths.append((cost, pred_node, pred_rank, edge_index))
        return state.paths[rank]

    def reconstruct(self, node: Hashable, rank: int) -> list[Hashable]:
        """Node list of the rank-th shortest s→node path."""
        entry = self.path_entry(node, rank)
        if entry is None:
            raise IndexError(f"node {node!r} has no rank-{rank} path")
        reversed_nodes = [node]
        while entry[1] is not None:
            reversed_nodes.append(entry[1])
            entry = self.path_entry(entry[1], entry[2])
            assert entry is not None
        return list(reversed(reversed_nodes))


def recursive_enumeration(
    graph: Digraph,
    source: Hashable,
    target: Hashable,
    k: Optional[int] = None,
    counters: Optional[Counters] = None,
) -> Iterator[tuple[list[Hashable], float]]:
    """Yield s-t paths as ``(node_list, cost)`` in nondecreasing cost."""
    rea = REA(graph, source, counters=counters)
    rank = 0
    while k is None or rank < k:
        entry = rea.path_entry(target, rank)
        if entry is None:
            return
        yield rea.reconstruct(target, rank), entry[0]
        rank += 1
