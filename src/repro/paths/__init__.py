"""k-shortest paths — the classic roots of any-k (tutorial Part 3).

The tutorial traces ranked enumeration back to k-shortest-path algorithms,
"some of which dates back to the 1950s": Hoffman–Pavley's deviation method
(1959) is the ancestor of the Lawler–Murty / ANYK-PART family, and the
Recursive Enumeration Algorithm (REA) of Jiménez–Marzal (after
Dreyfus/Bellman–Kalaba's "k-th best policies") is the ancestor of ANYK-REC.

This package implements both on weighted digraphs, plus the reduction the
tutorial uses to connect the two worlds: the answers of a path *query* are
exactly the s-t paths of a layered DAG, so :func:`path_query_as_graph`
turns a path-query database into a graph on which the classic algorithms
enumerate the same ranked results as the any-k machinery (cross-checked in
the tests and benchmark E16).
"""

from repro.paths.graph import Digraph, path_query_as_graph
from repro.paths.hoffman_pavley import hoffman_pavley
from repro.paths.rea import recursive_enumeration

__all__ = [
    "Digraph",
    "path_query_as_graph",
    "hoffman_pavley",
    "recursive_enumeration",
]
