"""Columnar backing store for weighted relations.

A :class:`ColumnStore` keeps the same logical content as a
:class:`~repro.data.relation.Relation` — fixed-arity value tuples plus a
parallel weight vector — but laid out column-wise: one Python list per
attribute and one contiguous ``array('d')`` of weights.  The layout is
chosen for the access patterns the engines actually have (the Grid Files
argument: storage follows access, not the object model):

- **bulk materialization** — the batch engine and the binary hash join
  produce results column-at-a-time; appending whole columns avoids the
  per-row method call, arity check, and index invalidation of
  ``Relation.add``;
- **projection / key extraction** — projecting onto an attribute subset
  reads whole columns and zips once, instead of indexing into every row
  tuple;
- **weight-ordered scans** — sorting reads the contiguous weight vector
  and touches row values only to break ties.

An optional numpy backend (float64 weight vector, enabled with the
``REPRO_COLUMNAR_NUMPY=1`` environment flag or ``backend="numpy"``)
drops in for the weight array; value columns stay Python lists because
they hold arbitrary comparable objects (the hub-graph datasets mix
strings and ints in one column).  The flag is an opt-in: the stdlib
backend is always available and both backends are behaviorally
identical.

``Relation.columnar()`` returns a cached :class:`ColumnStore` view of a
relation, invalidated on mutation exactly like its hash indexes.
"""

from __future__ import annotations

import math
import os
from array import array
from typing import Any, Iterable, Optional, Sequence


def _numpy_or_none():
    """The numpy module when importable, else None (never raises)."""
    try:
        import numpy  # noqa: PLC0415 - optional backend probe

        return numpy
    except Exception:  # pragma: no cover - numpy is baked into the image
        return None


def resolve_backend(backend: Optional[str] = None) -> str:
    """The effective weight-vector backend: ``"list"`` or ``"numpy"``.

    ``backend=None`` consults the ``REPRO_COLUMNAR_NUMPY`` environment
    flag; asking for numpy when it cannot be imported silently degrades
    to the stdlib backend (the flag is an optimization hint, not a hard
    dependency).
    """
    if backend is None:
        backend = (
            "numpy" if os.environ.get("REPRO_COLUMNAR_NUMPY") == "1" else "list"
        )
    if backend not in ("list", "numpy"):
        raise ValueError(f"unknown columnar backend {backend!r}")
    if backend == "numpy" and _numpy_or_none() is None:
        return "list"
    return backend


class ColumnStore:
    """Column-wise storage of a weighted relation.

    ``columns[i]`` is the list of values of attribute ``schema[i]``
    across all rows; ``weights`` is the parallel weight vector (an
    ``array('d')``, or a numpy float64 array under the numpy backend).
    """

    __slots__ = ("schema", "columns", "backend", "_weights", "_gauge")

    def __init__(
        self, schema: Sequence[str], backend: Optional[str] = None
    ) -> None:
        self.schema = tuple(schema)
        if not self.schema:
            raise ValueError("a column store needs at least one attribute")
        self.columns: list[list[Any]] = [[] for _ in self.schema]
        self.backend = resolve_backend(backend)
        self._weights: list[float] = []
        self._gauge: Any = None

    def attach_gauge(self, gauge: Any) -> None:
        """Report this store's row count into a space gauge
        (:class:`repro.obs.memory.SpaceGauge`): the current contents
        immediately, future appends as they happen."""
        self._gauge = gauge
        if gauge is not None and self._weights:
            gauge.add(len(self._weights))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_relation(cls, relation, backend: Optional[str] = None) -> "ColumnStore":
        """Columnar view of a :class:`~repro.data.relation.Relation`."""
        store = cls(relation.schema, backend=backend)
        store.extend(relation.rows, relation.weights)
        return store

    def append(self, row: Sequence[Any], weight: float = 0.0) -> None:
        """Append one row (mirrors ``Relation.add`` validation)."""
        if len(row) != len(self.schema):
            raise ValueError(
                f"row {tuple(row)!r} has arity {len(row)}, "
                f"store has arity {len(self.schema)}"
            )
        weight = float(weight)
        if not math.isfinite(weight):
            raise ValueError(f"weight {weight!r} is not finite")
        for column, value in zip(self.columns, row):
            column.append(value)
        self._weights.append(weight)
        if self._gauge is not None:
            self._gauge.add(1)

    def extend(
        self, rows: Iterable[Sequence[Any]], weights: Iterable[float]
    ) -> None:
        """Bulk append: transpose once, validate the weight vector once."""
        rows = list(rows)
        weights = [float(w) for w in weights]
        if len(rows) != len(weights):
            raise ValueError(
                f"{len(rows)} rows but {len(weights)} weights"
            )
        if not rows:
            return
        arity = len(self.schema)
        if any(len(row) != arity for row in rows):
            raise ValueError(f"every row must have arity {arity}")
        if not all(map(math.isfinite, weights)):
            raise ValueError("weights must be finite")
        for position, column in enumerate(self.columns):
            column.extend(row[position] for row in rows)
        self._weights.extend(weights)
        if self._gauge is not None:
            self._gauge.add(len(rows))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._weights)

    @property
    def weights(self):
        """The weight vector in the backend's representation."""
        if self.backend == "numpy":
            numpy = _numpy_or_none()
            if numpy is not None:
                return numpy.asarray(self._weights, dtype=numpy.float64)
        return array("d", self._weights)

    def weight(self, i: int) -> float:
        return self._weights[i]

    def column(self, attr: str) -> list[Any]:
        """One whole column by attribute name."""
        try:
            return self.columns[self.schema.index(attr)]
        except ValueError:
            raise KeyError(
                f"no attribute {attr!r}; schema is {self.schema}"
            ) from None

    def row(self, i: int) -> tuple:
        """Materialize row ``i`` as a tuple (gather across columns)."""
        return tuple(column[i] for column in self.columns)

    def rows(self) -> list[tuple]:
        """All rows, materialized (a single transpose via ``zip``)."""
        if not self._weights:
            return []
        return list(zip(*self.columns))

    def project(self, attrs: Sequence[str]) -> list[tuple]:
        """Rows projected onto ``attrs`` — reads only those columns."""
        picked = [self.column(a) for a in attrs]
        if not self._weights:
            return []
        return list(zip(*picked))

    def index_on(self, attrs: Sequence[str]) -> dict[tuple, list[int]]:
        """Hash index (projection key -> row ids), same shape as
        ``Relation.index_on`` so the two stores are interchangeable."""
        keys = self.project(attrs)
        index: dict[tuple, list[int]] = {}
        for i, key in enumerate(keys):
            index.setdefault(key, []).append(i)
        return index

    def sorted_order(self, weights: Optional[Sequence[Any]] = None) -> list[int]:
        """Row ids in ascending-weight order, ties by type-tagged row.

        The tie key is :func:`repro.anyk.ranking.solution_tie_key`
        (values decorated with their type name), so heterogeneous
        columns never hit an unorderable ``int < str`` comparison — the
        same total order every engine's deterministic stream uses.

        ``weights`` substitutes an external (parallel) weight vector for
        the stored one — the batch engine passes *lifted* weights so tie
        groups form in the ranking carrier, exactly as the any-k engines
        see them.
        """
        # Deferred import: repro.anyk sits above repro.data.
        from repro.anyk.ranking import solution_tie_key

        if weights is None:
            weights = self._weights
        elif len(weights) != len(self._weights):
            raise ValueError(
                f"external weight vector has {len(weights)} entries "
                f"for {len(self._weights)} rows"
            )
        rows = self.rows()
        return sorted(
            range(len(rows)),
            key=lambda i: (weights[i], solution_tie_key(rows[i])),
        )
