"""Synthetic workload generators.

The tutorial's claims are about asymptotic behaviour on specific families of
instances; this module builds those families:

- uniform and Zipf-skewed random relations (generic join inputs);
- weighted random graphs as a single edge relation (graph-pattern queries
  such as triangles and 4-cycles are self-joins over it — tutorial §1);
- the adversarial triangle instance from Part 2 on which every binary join
  plan materializes Θ(n²) intermediate tuples while the output is O(n);
- hub graphs with Θ(n²) 4-cycles (the introduction's motivating example);
- a dangling-path instance on which Yannakakis is linear but binary plans
  blow up (Part 2's output-sensitivity discussion);
- vertically partitioned scored lists for the TA/FA/NRA middleware model
  (Part 1), with controllable inter-list correlation;
- rank-join inputs where the depth of the top-ranked combination is a
  parameter (Part 1's "winners deep in the lists" worst case).

All generators take an explicit ``seed`` and are deterministic given it.
"""

from __future__ import annotations

import math
import random
from typing import Literal, Optional, Sequence

from repro.data.database import Database
from repro.data.relation import Relation

Correlation = Literal["independent", "correlated", "inverse"]


# ----------------------------------------------------------------------
# Generic random relations
# ----------------------------------------------------------------------
def random_relation(
    name: str,
    schema: Sequence[str],
    size: int,
    domain: int,
    seed: int = 0,
    weight_range: tuple[float, float] = (0.0, 1.0),
    zipf_skew: float = 0.0,
) -> Relation:
    """A random relation with values drawn from ``range(domain)``.

    ``zipf_skew > 0`` draws values from a Zipf-like distribution with that
    exponent (heavier skew concentrates values on small ids), which is how
    the benchmarks create the heavy join keys that hurt binary plans.
    """
    rng = random.Random(seed)
    rel = Relation(name, schema)
    lo, hi = weight_range
    for _ in range(size):
        if zipf_skew > 0.0:
            row = tuple(_zipf_draw(rng, domain, zipf_skew) for _ in schema)
        else:
            row = tuple(rng.randrange(domain) for _ in schema)
        rel.add(row, rng.uniform(lo, hi))
    return rel


def _zipf_draw(rng: random.Random, domain: int, skew: float) -> int:
    """Draw from an approximate Zipf distribution on ``range(domain)``.

    Uses the inverse-CDF power-law approximation, which is accurate enough
    for workload generation and avoids scipy's slower samplers.
    """
    u = rng.random()
    # Inverse CDF of p(x) ~ x^{-skew} on [1, domain].
    if abs(skew - 1.0) < 1e-9:
        value = math.exp(u * math.log(domain))
    else:
        power = 1.0 - skew
        value = (u * (domain**power - 1.0) + 1.0) ** (1.0 / power)
    return min(domain - 1, max(0, int(value) - 1))


# ----------------------------------------------------------------------
# Path and star databases (acyclic any-k workloads)
# ----------------------------------------------------------------------
def path_database(
    length: int,
    size: int,
    domain: int,
    seed: int = 0,
    weight_range: tuple[float, float] = (0.0, 1.0),
    zipf_skew: float = 0.0,
) -> Database:
    """Relations R1(A1,A2), ..., R_length(A_length, A_length+1).

    The standard acyclic workload of the any-k experiments: a chain join
    whose results are weighted paths.
    """
    if length < 1:
        raise ValueError("path length must be >= 1")
    db = Database()
    for i in range(1, length + 1):
        db.add(
            random_relation(
                f"R{i}",
                (f"A{i}", f"A{i + 1}"),
                size,
                domain,
                seed=seed + i,
                weight_range=weight_range,
                zipf_skew=zipf_skew,
            )
        )
    return db


def star_database(
    arms: int,
    size: int,
    domain: int,
    seed: int = 0,
    weight_range: tuple[float, float] = (0.0, 1.0),
) -> Database:
    """Relations R1(A0,A1), ..., R_arms(A0,A_arms) sharing the center A0."""
    if arms < 1:
        raise ValueError("star must have >= 1 arms")
    db = Database()
    for i in range(1, arms + 1):
        db.add(
            random_relation(
                f"R{i}",
                ("A0", f"A{i}"),
                size,
                domain,
                seed=seed + i,
                weight_range=weight_range,
            )
        )
    return db


def dangling_path_database(length: int, size: int) -> Database:
    """A path instance with empty output but Θ(n²) binary-plan work.

    R1 = {(i, 0)}, R2 = {(0, j)}: their pairwise join has size² tuples.  The
    last relation is empty, so the query output is empty — Yannakakis'
    semijoin reducer empties everything in O(n), while any binary plan that
    starts from R1 ⋈ R2 materializes the quadratic intermediate result.
    """
    if length < 3:
        raise ValueError("needs length >= 3 so a later relation can dangle")
    db = Database()
    db.add(
        Relation("R1", ("A1", "A2"), [(i, 0) for i in range(size)], [0.0] * size)
    )
    db.add(
        Relation("R2", ("A2", "A3"), [(0, j) for j in range(size)], [0.0] * size)
    )
    for i in range(3, length + 1):
        db.add(Relation(f"R{i}", (f"A{i}", f"A{i + 1}")))
    return db


# ----------------------------------------------------------------------
# Graphs and adversarial cyclic instances
# ----------------------------------------------------------------------
def random_graph_database(
    num_edges: int,
    num_nodes: int,
    seed: int = 0,
    weight_range: tuple[float, float] = (0.0, 1.0),
    relation_name: str = "E",
) -> Database:
    """A weighted directed graph as one edge relation E(src, dst).

    Duplicate edges are suppressed so pattern counts match simple-graph
    intuition; self-loops are excluded.
    """
    rng = random.Random(seed)
    rel = Relation(relation_name, ("src", "dst"))
    seen: set[tuple[int, int]] = set()
    lo, hi = weight_range
    attempts = 0
    max_attempts = num_edges * 50 + 1000
    while len(seen) < num_edges and attempts < max_attempts:
        attempts += 1
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v or (u, v) in seen:
            continue
        seen.add((u, v))
        rel.add((u, v), rng.uniform(lo, hi))
    return Database([rel])


def triangle_worstcase_database(n: int) -> Database:
    """The Part 2 adversarial triangle instance.

    R(A,B) = S(B,C) = T(C,A) = {(1,1), ..., (n/2,1)} ∪ {(1,2), ..., (1,n/2)}.
    Every pairwise join has Θ(n²) tuples while the AGM bound caps the output
    at n^1.5 (the actual output here is Θ(n)).
    """
    half = max(1, n // 2)
    rows = [(i, 1) for i in range(1, half + 1)] + [(1, j) for j in range(2, half + 1)]
    weights = [0.0] * len(rows)
    db = Database()
    db.add(Relation("R", ("A", "B"), rows, weights))
    db.add(Relation("S", ("B", "C"), rows, weights))
    db.add(Relation("T", ("C", "A"), rows, weights))
    return db


def fourcycle_hub_database(
    num_edges: int, seed: int = 0, weight_range: tuple[float, float] = (0.0, 1.0)
) -> Database:
    """An undirected-style hub graph with Θ(n²) distinct 4-cycles.

    Nodes: spokes a_1..a_m and c_1..c_m plus two hubs b and d; edges
    a_i—b, b—c_j, c_j—d, d—a_i stored in both directions in E(src, dst).
    Every pair (a_i, c_j) closes the 4-cycle a_i → b → c_j → d → a_i, giving
    m² cycles from Θ(m) edges — the introduction's point that worst-case
    output of the 4-cycle query is quadratic.
    """
    m = max(1, num_edges // 8)
    rng = random.Random(seed)
    lo, hi = weight_range
    rel = Relation("E", ("src", "dst"))
    hub_b = "b"
    hub_d = "d"
    for i in range(m):
        a = f"a{i}"
        c = f"c{i}"
        for u, v in ((a, hub_b), (hub_b, c), (c, hub_d), (hub_d, a)):
            w = rng.uniform(lo, hi)
            rel.add((u, v), w)
            rel.add((v, u), w)
    return Database([rel])


def fourcycle_decoy_database(
    num_edges: int, num_rings: int = 4, seed: int = 0
) -> Database:
    """A 4-cycle instance that is adversarial for rank joins (E7).

    Structure: a hub ``h`` with m light in-edges (a_i → h) and m light
    out-edges (h → b_j), where the b_j are sinks — so the Θ(m²) light
    2-paths through h never extend to a 4-cycle; plus ``num_rings`` genuine
    4-cycles made of *heavy* edges (weight ≈ 0.9 each).

    A left-deep rank join must drain the light decoy 2-paths (quadratic
    intermediate results in the RAM model) before its corner bound lets a
    heavy genuine cycle through.  The any-k route is immune: the hub is
    heavy, so its per-hub tree is an acyclic query whose full reducer
    deletes every dangling decoy in linear time.
    """
    rng = random.Random(seed)
    m = max(2, (num_edges - 4 * num_rings) // 2)
    rel = Relation("E", ("src", "dst"))
    for i in range(m):
        rel.add((f"a{i}", "h"), 0.001 + 0.1 * rng.random())
        rel.add(("h", f"b{i}"), 0.001 + 0.1 * rng.random())
    for ring in range(num_rings):
        nodes = [f"r{ring}_{p}" for p in range(4)]
        for p in range(4):
            rel.add(
                (nodes[p], nodes[(p + 1) % 4]),
                0.85 + 0.1 * rng.random(),
            )
    return Database([rel])


# ----------------------------------------------------------------------
# Top-k middleware inputs (Part 1)
# ----------------------------------------------------------------------
def scored_lists(
    num_objects: int,
    num_lists: int,
    correlation: Correlation = "independent",
    seed: int = 0,
) -> list[list[tuple[str, float]]]:
    """Vertically partitioned scored lists for the TA/FA/NRA model.

    Returns ``num_lists`` lists of ``(object_id, score)`` sorted by
    descending score.  ``correlation`` controls how an object's scores
    relate across lists:

    - ``independent``: i.i.d. uniform scores — TA's typical case;
    - ``correlated``: all lists share a base score plus small noise — the
      best case, where few accesses identify the winners;
    - ``inverse``: list scores are anti-correlated — the hard case in which
      top-ranked overall objects sit deep in individual lists.
    """
    rng = random.Random(seed)
    base = [rng.random() for _ in range(num_objects)]
    lists: list[list[tuple[str, float]]] = []
    for j in range(num_lists):
        column: list[tuple[str, float]] = []
        for i in range(num_objects):
            if correlation == "independent":
                score = rng.random()
            elif correlation == "correlated":
                score = min(1.0, max(0.0, base[i] + rng.uniform(-0.05, 0.05)))
            elif correlation == "inverse":
                # Alternate lists see the object near the top / near the
                # bottom, so aggregate winners hide deep in half the lists.
                score = base[i] if j % 2 == 0 else 1.0 - base[i]
                score = min(1.0, max(0.0, score + rng.uniform(-0.01, 0.01)))
            else:  # pragma: no cover - guarded by Literal type
                raise ValueError(f"unknown correlation {correlation!r}")
            column.append((f"obj{i}", score))
        column.sort(key=lambda pair: (-pair[1], pair[0]))
        lists.append(column)
    return lists


def rank_join_database(
    size: int,
    winner_depth: int,
    num_results: int = 8,
    seed: int = 0,
) -> Database:
    """Two relations R(A,B), S(B,C) for rank-join depth experiments.

    The background tuples of R and S use *disjoint* join-key ranges, so they
    never join; ``num_results`` joining pairs are planted so that the
    top-ranked pair's constituents sit at sorted-order depth
    ``winner_depth`` in each input.  A rank join must therefore descend at
    least that deep before it can emit its first result — the regime in
    which the tutorial notes TA-style early termination degrades.

    Weights ascend (lower = better) per the library convention.
    """
    if winner_depth >= size:
        raise ValueError("winner_depth must be smaller than size")
    rng = random.Random(seed)
    # Named to match repro.query.cq.path_query(2): R1(A1,A2) ⋈ R2(A2,A3).
    r = Relation("R1", ("A1", "A2"))
    s = Relation("R2", ("A2", "A3"))
    # Background tuples: disjoint key ranges, weights uniform in (0, 1).
    for i in range(size):
        r.add((f"ra{i}", ("r", i)), rng.random())
        s.add((("s", i), f"sc{i}"), rng.random())
    # Planted joining pairs at increasing depths starting at winner_depth.
    r_weights = sorted(r.weights)
    s_weights = sorted(s.weights)
    step = max(1, (size - winner_depth) // (num_results + 1))
    for j in range(num_results):
        depth = min(size - 1, winner_depth + j * step)
        key = ("join", j)
        r.add((f"ra_win{j}", key), r_weights[depth] - 1e-9 * (num_results - j))
        s.add((key, f"sc_win{j}"), s_weights[depth] - 1e-9 * (num_results - j))
    return Database([r, s])
