"""Weighted in-memory relations.

A :class:`Relation` is a named bag of fixed-arity value tuples, each carrying
a numeric weight.  Weights are the ranking signal for top-k / any-k queries:
the weight of a join result is the ranking-function combination (by default
the sum) of the weights of the input tuples that produced it, exactly the
"aggregate weight" notion of the tutorial's Part 1.

Relations are append-only; hash indexes on attribute subsets are built
lazily and cached, and invalidated on mutation.  Lower weight means more
important throughout (the tutorial's "lightest cycles" convention); the
top-k middleware algorithms in :mod:`repro.topk` use descending *scores*
instead, and convert explicitly at the boundary.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence


class SchemaError(ValueError):
    """Raised for malformed schemas or rows that do not match a schema."""


class Relation:
    """A named, weighted, in-memory relation.

    Parameters
    ----------
    name:
        Relation name used by query atoms to refer to it.
    schema:
        Attribute names, one per column.  Must be unique within the relation.
    rows:
        Optional initial rows (iterable of value tuples).
    weights:
        Optional per-row weights, parallel to ``rows``.  Defaults to 0.0 for
        every row, which makes unweighted (pure join) use transparent.
    """

    __slots__ = (
        "name",
        "schema",
        "rows",
        "weights",
        "version",
        "_indexes",
        "_positions",
        "_columnar",
    )

    def __init__(
        self,
        name: str,
        schema: Sequence[str],
        rows: Optional[Iterable[Sequence[Any]]] = None,
        weights: Optional[Iterable[float]] = None,
    ) -> None:
        schema = tuple(schema)
        if not schema:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        if len(set(schema)) != len(schema):
            raise SchemaError(f"relation {name!r} has duplicate attributes: {schema}")
        self.name = name
        self.schema = schema
        self.rows: list[tuple] = []
        self.weights: list[float] = []
        #: Version annotation stamped by :mod:`repro.dynamic` when a
        #: mutation publishes a new copy-on-write generation of this
        #: relation.  0 means "static" (never mutated through the
        #: versioned layer); the engine catalog's fingerprints include it
        #: so equal-cardinality states with different contents (delete one
        #: row, insert another) never collide in plan/stats caches.
        self.version: int = 0
        self._indexes: dict[tuple[str, ...], dict] = {}
        # Memoized attribute-tuple -> column-position resolutions.  The
        # schema is immutable for the life of the relation, so entries
        # never invalidate (unlike _indexes, which depend on the rows).
        self._positions: dict[tuple[str, ...], tuple[int, ...]] = {}
        self._columnar = None
        if rows is not None:
            weight_list = list(weights) if weights is not None else None
            row_list = [tuple(row) for row in rows]
            if weight_list is not None and len(weight_list) != len(row_list):
                raise SchemaError(
                    f"relation {name!r}: {len(row_list)} rows but "
                    f"{len(weight_list)} weights"
                )
            for i, row in enumerate(row_list):
                self.add(row, weight_list[i] if weight_list is not None else 0.0)

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, {self.schema!r}, {len(self.rows)} rows)"

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.schema)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, row: Sequence[Any], weight: float = 0.0) -> None:
        """Append one row with the given weight.

        Rejects rows of the wrong arity and non-finite weights (NaN weights
        would silently corrupt every ranking structure downstream).
        """
        row = tuple(row)
        if len(row) != len(self.schema):
            raise SchemaError(
                f"relation {self.name!r}: row {row!r} has arity {len(row)}, "
                f"schema has arity {len(self.schema)}"
            )
        weight = float(weight)
        if not math.isfinite(weight):
            raise SchemaError(
                f"relation {self.name!r}: weight {weight!r} is not finite"
            )
        self.rows.append(row)
        self.weights.append(weight)
        self._indexes.clear()
        self._columnar = None

    def extend(
        self, rows: Iterable[Sequence[Any]], weights: Optional[Iterable[float]] = None
    ) -> None:
        """Append many rows (with optional parallel weights)."""
        if weights is None:
            for row in rows:
                self.add(row)
        else:
            for row, weight in zip(rows, weights, strict=True):
                self.add(row, weight)

    def bulk_load(
        self, rows: Sequence[Sequence[Any]], weights: Sequence[float]
    ) -> None:
        """Append many rows at once, validating vector-at-a-time.

        The bulk counterpart of :meth:`add` for engines that materialize
        whole join results (the binary hash join, the batch baseline):
        one arity sweep, one finiteness sweep, one cache invalidation —
        instead of a per-row method call that clears the index cache
        ``len(rows)`` times.
        """
        rows = [row if type(row) is tuple else tuple(row) for row in rows]
        weights = [float(w) for w in weights]
        if len(rows) != len(weights):
            raise SchemaError(
                f"relation {self.name!r}: {len(rows)} rows but "
                f"{len(weights)} weights"
            )
        arity = len(self.schema)
        for row in rows:
            if len(row) != arity:
                raise SchemaError(
                    f"relation {self.name!r}: row {row!r} has arity "
                    f"{len(row)}, schema has arity {arity}"
                )
        if not all(map(math.isfinite, weights)):
            bad = next(w for w in weights if not math.isfinite(w))
            raise SchemaError(
                f"relation {self.name!r}: weight {bad!r} is not finite"
            )
        self.rows.extend(rows)
        self.weights.extend(weights)
        self._indexes.clear()
        self._columnar = None

    # ------------------------------------------------------------------
    # Attribute access helpers
    # ------------------------------------------------------------------
    def positions(self, attrs: Sequence[str]) -> tuple[int, ...]:
        """Column positions of the named attributes.

        Memoized per attribute tuple: the schema never changes, and the
        hot loops (T-DP bucket keys, trie builds, factorized caches) ask
        for the same handful of attribute subsets millions of times —
        a linear ``schema.index`` scan per call was pure overhead.
        Raises :class:`SchemaError` for unknown attribute names.
        """
        attrs = tuple(attrs)
        cached = self._positions.get(attrs)
        if cached is not None:
            return cached
        try:
            resolved = tuple(self.schema.index(a) for a in attrs)
        except ValueError as exc:
            raise SchemaError(
                f"relation {self.name!r} with schema {self.schema} has no "
                f"attribute among {attrs!r}"
            ) from exc
        self._positions[attrs] = resolved
        return resolved

    def key_of(self, row: Sequence[Any], attrs: Sequence[str]) -> tuple:
        """Project ``row`` onto ``attrs`` (as a tuple key).

        Per-call-site users projecting many rows should resolve
        :meth:`positions` once and index directly; this convenience
        wrapper at least no longer pays a linear schema scan per call
        (see :meth:`positions`).
        """
        return tuple(row[p] for p in self.positions(attrs))

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def index_on(self, attrs: Sequence[str]) -> dict[tuple, list[int]]:
        """Hash index: projection key -> list of row positions.

        Built on first use and cached until the relation is mutated.
        """
        attrs = tuple(attrs)
        cached = self._indexes.get(attrs)
        if cached is not None:
            return cached
        positions = self.positions(attrs)
        index: dict[tuple, list[int]] = {}
        for i, row in enumerate(self.rows):
            key = tuple(row[p] for p in positions)
            index.setdefault(key, []).append(i)
        self._indexes[attrs] = index
        return index

    def distinct_keys(self, attrs: Sequence[str]) -> Iterable[tuple]:
        """Distinct projection keys on ``attrs``."""
        return self.index_on(attrs).keys()

    def distinct_count(self, attrs: Sequence[str]) -> int:
        """Number of distinct projection keys on ``attrs``.

        The basic cardinality statistic the engine router's catalog pulls
        (average fan-out = size / distinct_count); shares the lazily built
        hash index, so repeated planning over one relation is cheap.
        """
        return len(self.index_on(attrs))

    # ------------------------------------------------------------------
    # Relational operations (copying)
    # ------------------------------------------------------------------
    def project(self, attrs: Sequence[str], name: Optional[str] = None) -> "Relation":
        """Projection (bag semantics: keeps duplicates and weights)."""
        positions = self.positions(attrs)
        out = Relation(name or f"pi_{self.name}", attrs)
        for row, weight in zip(self.rows, self.weights):
            out.add(tuple(row[p] for p in positions), weight)
        return out

    def select(
        self, predicate: Callable[[tuple], bool], name: Optional[str] = None
    ) -> "Relation":
        """Selection by an arbitrary row predicate."""
        out = Relation(name or f"sigma_{self.name}", self.schema)
        for row, weight in zip(self.rows, self.weights):
            if predicate(row):
                out.add(row, weight)
        return out

    def rename(
        self, mapping: dict[str, str], name: Optional[str] = None
    ) -> "Relation":
        """Rename attributes; shares row storage semantics by copying."""
        new_schema = tuple(mapping.get(a, a) for a in self.schema)
        out = Relation(name or self.name, new_schema)
        out.rows = list(self.rows)
        out.weights = list(self.weights)
        # A renamed view is the same data generation: resetting to 0
        # would alias a static fingerprint in the plan/stats caches.
        out.version = self.version
        return out

    def copy(self, name: Optional[str] = None) -> "Relation":
        """Shallow copy (rows are immutable tuples, so this is safe)."""
        out = Relation(name or self.name, self.schema)
        out.rows = list(self.rows)
        out.weights = list(self.weights)
        out.version = self.version
        return out

    def sorted_by_weight(self) -> "Relation":
        """A copy sorted by ascending weight (ties broken by row value).

        Ties are broken by the type-tagged row order
        (:func:`repro.anyk.ranking.solution_tie_key`), not by the raw
        row: comparing raw rows raises ``TypeError`` on heterogeneous
        columns (``int < str``), which the hub-graph datasets mixing
        string hub labels with integer spokes hit through the top-k
        middleware's sorted scans.
        """
        # Deferred import: repro.anyk sits above repro.data.
        from repro.anyk.ranking import solution_tie_key

        rows, weights = self.rows, self.weights
        order = sorted(
            range(len(rows)),
            key=lambda i: (weights[i], solution_tie_key(rows[i])),
        )
        out = Relation(self.name, self.schema)
        out.rows = [rows[i] for i in order]
        out.weights = [weights[i] for i in order]
        # Same data generation, like copy()/rename().
        out.version = self.version
        return out

    def columnar(self, backend: Optional[str] = None):
        """A cached columnar view (:class:`repro.data.columnar.ColumnStore`).

        Built on first use and invalidated on mutation, like the hash
        indexes.  Passing an explicit ``backend`` bypasses the cache
        (the cached view uses the environment-selected default).
        """
        from repro.data.columnar import ColumnStore

        if backend is not None:
            return ColumnStore.from_relation(self, backend=backend)
        if self._columnar is None:
            self._columnar = ColumnStore.from_relation(self)
        return self._columnar

    def as_set(self) -> set[tuple]:
        """The set of distinct rows (weights ignored)."""
        return set(self.rows)
