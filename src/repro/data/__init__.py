"""In-memory relational substrate.

Everything in this library operates on :class:`~repro.data.relation.Relation`
objects collected in a :class:`~repro.data.database.Database`.  Relations are
bags of value tuples with an optional per-tuple *weight*; weights drive the
ranking in the top-k and any-k parts of the library (lower weight = better,
matching the tutorial's "top-k lightest 4-cycles" framing).

:mod:`repro.data.generators` builds the synthetic workloads used by the
examples, tests and benchmarks, including the adversarial instances the
tutorial describes explicitly (the Θ(n²)-intermediate-result triangle
instance of Part 2, and graphs with quadratically many 4-cycles from the
introduction).
"""

from repro.data.database import Database
from repro.data.relation import Relation

__all__ = ["Relation", "Database"]
