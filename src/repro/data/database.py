"""Database catalog: a named collection of relations.

The catalog is intentionally small: the library's engines take a
:class:`Database` plus a :class:`~repro.query.cq.ConjunctiveQuery` whose
atoms name relations in the catalog.  Self-joins are expressed by several
atoms referring to the same relation name (the tutorial's graph-pattern
queries are all self-joins over a single edge relation).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.data.relation import Relation, SchemaError


class Database:
    """A mapping from relation name to :class:`Relation`."""

    def __init__(self, relations: Optional[Iterable[Relation]] = None) -> None:
        self._relations: dict[str, Relation] = {}
        #: Snapshot version stamped by :class:`repro.dynamic.VersionedDatabase`
        #: when this instance is one of its published snapshots; None for
        #: plain (unversioned) databases.  ``explain()`` reports it so a
        #: plan can be traced to the exact data generation it was costed on.
        self.version: Optional[int] = None
        for relation in relations or ():
            self.add(relation)

    def add(self, relation: Relation) -> None:
        """Register a relation; names must be unique."""
        if relation.name in self._relations:
            raise SchemaError(f"database already has a relation {relation.name!r}")
        self._relations[relation.name] = relation

    def replace(self, relation: Relation) -> None:
        """Register a relation, overwriting any existing one of that name."""
        self._relations[relation.name] = relation

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError as exc:
            raise KeyError(
                f"no relation {name!r}; known: {sorted(self._relations)}"
            ) from exc

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> list[str]:
        """Sorted relation names."""
        return sorted(self._relations)

    def max_relation_size(self) -> int:
        """n — the size of the largest relation (the paper's parameter)."""
        if not self._relations:
            return 0
        return max(len(r) for r in self._relations.values())

    def sizes(self) -> dict[str, int]:
        """Relation name -> cardinality (base stats for the engine
        router's catalog, :class:`repro.engine.catalog.CatalogStats`)."""
        return {name: len(r) for name, r in self._relations.items()}

    def total_tuples(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(r) for r in self._relations.values())

    def copy(self) -> "Database":
        """Deep-enough copy: relations are copied, rows shared (immutable)."""
        out = Database(relation.copy() for relation in self)
        out.version = self.version
        return out
