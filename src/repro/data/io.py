"""Loading and saving relations as delimited text files.

Real deployments of the algorithms in this library start from edge lists
and scored tables on disk; this module provides the small, dependency-free
I/O layer: weighted relations as CSV/TSV (one column per attribute plus an
optional trailing weight column), graph edge lists, and the scored lists of
the TA middleware model.

Values are read as ``int`` when possible, then ``float``, else kept as
strings — the pragmatic typing rule for ad-hoc data files.  Weights must
parse as finite floats (enforced by :class:`~repro.data.relation.Relation`).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.data.database import Database
from repro.data.relation import Relation, SchemaError

PathLike = Union[str, Path]

#: Column name marking the weight column in headered files.
WEIGHT_COLUMN = "__weight__"


def _parse_value(text: str):
    """int if possible, then float, else the raw string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def load_relation(
    path: PathLike,
    name: Optional[str] = None,
    schema: Optional[Sequence[str]] = None,
    delimiter: str = ",",
    has_weights: Optional[bool] = None,
) -> Relation:
    """Read a relation from a delimited file.

    With ``schema=None`` the first row is a header; a trailing
    ``__weight__`` column holds tuple weights.  With an explicit schema
    there is no header, and ``has_weights`` says whether a trailing weight
    column is present (default: inferred from the first row's width).
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = [row for row in reader if row]
    if not rows:
        raise SchemaError(f"{path}: empty file; cannot infer a schema")

    if schema is None:
        header = rows[0]
        data_rows = rows[1:]
        weighted = bool(header) and header[-1] == WEIGHT_COLUMN
        attributes = tuple(header[:-1] if weighted else header)
    else:
        attributes = tuple(schema)
        data_rows = rows
        if has_weights is None:
            weighted = bool(data_rows) and len(data_rows[0]) == len(attributes) + 1
        else:
            weighted = has_weights

    relation = Relation(name or path.stem, attributes)
    expected = len(attributes) + (1 if weighted else 0)
    for line_number, row in enumerate(data_rows, start=2 if schema is None else 1):
        if len(row) != expected:
            raise SchemaError(
                f"{path}:{line_number}: expected {expected} fields, got {len(row)}"
            )
        values = tuple(_parse_value(field) for field in row[: len(attributes)])
        weight = float(row[-1]) if weighted else 0.0
        relation.add(values, weight)
    return relation


def save_relation(
    relation: Relation,
    path: PathLike,
    delimiter: str = ",",
    include_weights: bool = True,
) -> None:
    """Write a relation with a header row (round-trips with
    :func:`load_relation`)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        header = list(relation.schema)
        if include_weights:
            header.append(WEIGHT_COLUMN)
        writer.writerow(header)
        for row, weight in zip(relation.rows, relation.weights):
            record = [str(v) for v in row]
            if include_weights:
                record.append(repr(weight))
            writer.writerow(record)


def load_graph(
    path: PathLike,
    relation_name: str = "E",
    delimiter: str = ",",
    default_weight: float = 0.0,
) -> Database:
    """Read an edge list ``src,dst[,weight]`` (no header) into E(src, dst)."""
    path = Path(path)
    relation = Relation(relation_name, ("src", "dst"))
    with path.open(newline="") as handle:
        for line_number, row in enumerate(
            csv.reader(handle, delimiter=delimiter), start=1
        ):
            if not row or (len(row) == 1 and not row[0].strip()):
                continue
            if row[0].lstrip().startswith("#"):
                continue
            if len(row) not in (2, 3):
                raise SchemaError(
                    f"{path}:{line_number}: expected 2 or 3 fields, got {len(row)}"
                )
            weight = float(row[2]) if len(row) == 3 else default_weight
            relation.add(
                (_parse_value(row[0]), _parse_value(row[1])), weight
            )
    return Database([relation])


def load_scored_lists(
    paths: Sequence[PathLike], delimiter: str = ","
) -> list[list[tuple[str, float]]]:
    """Read TA-model scored lists, one ``object,score`` file per list.

    Rows need not be pre-sorted; each list is sorted by descending score
    (ties broken by object id) as the access model requires.
    """
    lists: list[list[tuple[str, float]]] = []
    for path in paths:
        path = Path(path)
        column: list[tuple[str, float]] = []
        with path.open(newline="") as handle:
            for line_number, row in enumerate(
                csv.reader(handle, delimiter=delimiter), start=1
            ):
                if not row:
                    continue
                if len(row) != 2:
                    raise SchemaError(
                        f"{path}:{line_number}: expected 2 fields, got {len(row)}"
                    )
                column.append((row[0], float(row[1])))
        column.sort(key=lambda pair: (-pair[1], pair[0]))
        lists.append(column)
    return lists
