"""The Yannakakis algorithm: O~(n + r) evaluation of acyclic queries (§3).

After the full reducer leaves the database globally consistent, joins are
performed bottom-up along the join tree.  For *full* conjunctive queries
(our setting) every intermediate tuple produced after reduction extends to
at least one query answer and is a restriction of it, so intermediate sizes
never exceed the output size — the algorithm "essentially matches the
Ω(n + r) lower bound", which experiment E3 demonstrates against binary
plans on a dangling-tuple instance.
"""

from __future__ import annotations

import operator
from typing import Callable, Optional

from repro.data.database import Database
from repro.data.relation import Relation
from repro.joins.base import reorder_to_query_schema
from repro.joins.hash_join import hash_join
from repro.joins.semijoin import full_reducer
from repro.query.cq import ConjunctiveQuery
from repro.query.hypergraph import JoinTree, join_tree_or_raise
from repro.util.counters import Counters


def evaluate(
    db: Database,
    query: ConjunctiveQuery,
    counters: Optional[Counters] = None,
    combine: Callable[[float, float], float] = operator.add,
    tree: Optional[JoinTree] = None,
) -> Relation:
    """Full reducer, then joins up the tree (children into parents)."""
    query.validate(db)
    if tree is None:
        tree = join_tree_or_raise(query)
    relations = full_reducer(db, query, tree=tree, counters=counters)

    # Join children into parents, deepest nodes first: when a node is
    # processed, each of its children already holds the join of its whole
    # subtree.
    joined = dict(relations)
    for node in reversed(tree.order):
        for child in tree.children[node]:
            joined[node] = hash_join(
                joined[node], joined[child], counters=counters, combine=combine
            )
    result = reorder_to_query_schema(joined[tree.root], query)
    if counters is not None:
        counters.output_tuples += len(result)
        counters.intermediate_tuples -= len(result)
    return result


def boolean(
    db: Database,
    query: ConjunctiveQuery,
    counters: Optional[Counters] = None,
    tree: Optional[JoinTree] = None,
) -> bool:
    """The Boolean acyclic query: any answers at all?

    Only needs the bottom-up half of the full reducer — the query is
    non-empty iff the root relation survives it non-empty.  O~(n).
    """
    query.validate(db)
    if tree is None:
        tree = join_tree_or_raise(query)
    from repro.joins.base import atom_relation
    from repro.joins.semijoin import semijoin

    relations = {
        i: atom_relation(db, query, i, counters=counters)
        for i in range(len(query.atoms))
    }
    for node in reversed(tree.order):
        for child in tree.children[node]:
            relations[node] = semijoin(
                relations[node], relations[child], counters=counters
            )
            if node == tree.root and len(relations[node]) == 0:
                return False
    return len(relations[tree.root]) > 0
