"""Boolean conjunctive queries: "is there any result at all?" (§1, §3).

The tutorial's motivating observation: worst-case-optimal join algorithms
are not output-sensitive, so the Boolean 4-cycle query — answerable in
O~(n^1.5) via the union-of-trees decomposition — would still cost a WCO
algorithm O~(n²).  This module provides:

- :func:`has_any_result` — a general Boolean evaluator that uses the
  linear-time Yannakakis semijoin test for acyclic queries and
  Generic-Join with early exit otherwise;
- :func:`fourcycle_boolean` — the O~(n^1.5) heavy/light detection, one
  Yannakakis emptiness test per union tree.
"""

from __future__ import annotations

from typing import Optional

from repro.data.database import Database
from repro.joins.generic_join import boolean as _generic_join_boolean
from repro.joins.heavylight import fourcycle_union_of_trees
from repro.joins.yannakakis import boolean as _yannakakis_boolean
from repro.query.cq import ConjunctiveQuery
from repro.query.hypergraph import gyo_reduction
from repro.util.counters import Counters


def has_any_result(
    db: Database,
    query: ConjunctiveQuery,
    counters: Optional[Counters] = None,
) -> bool:
    """Boolean evaluation with the cheapest applicable strategy.

    Acyclic queries use the bottom-up semijoin pass (O~(n)); cyclic queries
    fall back to Generic-Join with early exit (O~(n^ρ*) worst case).
    """
    query.validate(db)
    tree = gyo_reduction(query)
    if tree is not None:
        return _yannakakis_boolean(db, query, counters=counters, tree=tree)
    return _generic_join_boolean(db, query, counters=counters)


def fourcycle_boolean(
    db: Database,
    query: ConjunctiveQuery,
    counters: Optional[Counters] = None,
    threshold: Optional[float] = None,
) -> bool:
    """Is there any 4-cycle?  O~(n^1.5) via the union-of-trees (§1's claim).

    Builds the heavy/light decomposition (cost O(n^1.5)) and runs the
    linear-time acyclic Boolean test on each tree, stopping at the first
    non-empty one.
    """
    trees = fourcycle_union_of_trees(
        db, query, counters=counters, threshold=threshold
    )
    for tree in trees:
        if _yannakakis_boolean(tree.database, tree.query, counters=counters):
            return True
    return False
