"""Sorted tries over relations, with Leapfrog-style iterators.

Worst-case-optimal joins need, per atom, the ability to (a) enumerate the
distinct values of the next join variable given bound earlier variables in
sorted order and (b) *seek* forward to the first value ≥ some target in
logarithmic time.  A :class:`Trie` stores a relation level-by-level in a
chosen attribute order; :class:`TrieIterator` exposes the classic
``open / up / next / seek / key / at_end`` interface of the Leapfrog
Triejoin paper.

The last trie level stores the *weight lists* of the tuples that end there,
so bag semantics survive: a relation holding the same row twice (with
different weights) yields two join results.

Since the tutorial's cost analysis assumes no pre-built indexes, trie
construction cost is part of query time — counted through ``tuples_read``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Optional, Sequence

from repro.data.relation import Relation
from repro.util.counters import Counters


def ordkey(value: Any) -> tuple[str, Any]:
    """Total order over possibly mixed-type values.

    Orders first by type name, then by value — enough to make seeks well
    defined when different relations use different value types for the same
    variable (they then simply never match).
    """
    return (value.__class__.__name__, value)


class _Node:
    """One trie level: parallel arrays of sorted keys and children.

    ``children`` is ``None`` at the last level; there ``weight_lists[i]``
    holds the weights of all duplicate rows ending at ``keys[i]``.
    """

    __slots__ = ("keys", "children", "weight_lists")

    def __init__(self) -> None:
        self.keys: list = []
        self.children: Optional[list["_Node"]] = None
        self.weight_lists: Optional[list[list[float]]] = None


class Trie:
    """A relation stored as a sorted trie in a given attribute order."""

    def __init__(
        self,
        relation: Relation,
        attr_order: Sequence[str],
        counters: Optional[Counters] = None,
    ) -> None:
        if sorted(attr_order) != sorted(relation.schema):
            raise ValueError(
                f"trie order {tuple(attr_order)} is not a permutation of "
                f"schema {relation.schema}"
            )
        self.attr_order = tuple(attr_order)
        self.depth = len(self.attr_order)
        positions = relation.positions(self.attr_order)

        # Build nested dicts first, then freeze into sorted arrays.
        root_dict: dict = {}
        for row, weight in zip(relation.rows, relation.weights):
            if counters is not None:
                counters.tuples_read += 1
            node = root_dict
            for p in positions[:-1]:
                node = node.setdefault(row[p], {})
            node.setdefault(row[positions[-1]], []).append(weight)
        self.root = self._freeze(root_dict, level=0)

    def _freeze(self, node_dict: dict, level: int) -> _Node:
        node = _Node()
        node.keys = sorted(node_dict.keys(), key=ordkey)
        if level == self.depth - 1:
            node.weight_lists = [node_dict[k] for k in node.keys]
        else:
            node.children = [
                self._freeze(node_dict[k], level + 1) for k in node.keys
            ]
        return node

    def iterator(self, counters: Optional[Counters] = None) -> "TrieIterator":
        """A fresh iterator positioned above the first level."""
        return TrieIterator(self, counters=counters)


class TrieIterator:
    """Leapfrog Triejoin linear iterator over one trie.

    The iterator is a stack of (node, index) pairs; ``open`` descends into
    the current key's child level, ``up`` pops, ``next``/``seek`` move
    within the current level.  ``at_end()`` reports falling off the end of
    the current level (the iterator stays usable: ``up`` recovers).
    """

    def __init__(self, trie: Trie, counters: Optional[Counters] = None) -> None:
        self._trie = trie
        self._counters = counters
        self._stack: list[tuple[_Node, int]] = []

    # -- position queries ------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of open levels."""
        return len(self._stack)

    def at_end(self) -> bool:
        """True if the current level is exhausted."""
        node, index = self._stack[-1]
        return index >= len(node.keys)

    def key(self) -> Any:
        """The value at the current position."""
        node, index = self._stack[-1]
        return node.keys[index]

    def weights(self) -> list[float]:
        """Weight list at the current (last-level) position."""
        node, index = self._stack[-1]
        if node.weight_lists is None:
            raise RuntimeError("weights() is only available at the last level")
        return node.weight_lists[index]

    # -- movement ---------------------------------------------------------
    def open(self) -> None:
        """Descend into the child level of the current key (or the root)."""
        if not self._stack:
            self._stack.append((self._trie.root, 0))
            return
        node, index = self._stack[-1]
        if node.children is None:
            raise RuntimeError("cannot open below the last trie level")
        self._stack.append((node.children[index], 0))

    def up(self) -> None:
        """Return to the parent level."""
        self._stack.pop()

    def next(self) -> None:
        """Advance one position within the current level."""
        node, index = self._stack[-1]
        self._stack[-1] = (node, index + 1)
        if self._counters is not None:
            self._counters.comparisons += 1

    def seek(self, target: Any) -> None:
        """Jump to the first key ≥ ``target`` within the current level.

        Binary search from the current position (galloping would also do;
        both meet the O(log) bound the LFTJ analysis needs).
        """
        node, index = self._stack[-1]
        new_index = bisect_left(
            node.keys, ordkey(target), lo=index, key=ordkey
        )
        self._stack[-1] = (node, new_index)
        if self._counters is not None:
            self._counters.comparisons += max(
                1, (len(node.keys) - index).bit_length()
            )
