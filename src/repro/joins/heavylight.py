"""Heavy/light union-of-trees decomposition for the 4-cycle query.

The tutorial's flagship example (§1, §3): the 4-cycle query has fractional
hypertree width 2, so any *single*-tree decomposition costs Θ(n²) — but its
submodular width is 1.5, and PANDA-style algorithms that route different
parts of the input to *multiple* trees achieve O~(n^1.5 + r).  This module
implements that construction concretely for

    Q(x1,x2,x3,x4) :- R1(x1,x2), R2(x2,x3), R3(x3,x4), R4(x4,x1)

(possibly a self-join, as in the "top-k lightest 4-cycles" query over a
graph's edge relation).  With Δ = √n and degree deg1(b) = |σ_{x2=b} R1|,
deg3(d) = |σ_{x4=d} R3|, the answer space is *partitioned* by the heaviness
of the result's x2 and x4 values:

- **x2 heavy** (deg1 > Δ — at most √n such values): one tree per heavy
  value b.  Fixing x2 = b reduces Q to the acyclic path query
  U1_b(x1) ⋈ U2_b(x3) ⋈ R3(x3,x4) ⋈ R4(x4,x1); each tree costs O~(n).
- **x2 light, x4 heavy**: symmetric, one tree per heavy x4 value.
- **x2 light, x4 light**: one tree joining the two materialized "wedges"
  J12 = σ_{x2 light}(R1 ⋈ R2) and J34 = σ_{x4 light}(R3 ⋈ R4), each of size
  at most nΔ = n^1.5; the tree J12(x1,x2,x3) ⋈ J34(x3,x4,x1) is acyclic.

Every original atom contributes its weight exactly once per tree, so ranked
enumeration over the union (a merge of per-tree any-k streams —
:mod:`repro.anyk.cyclic`) ranks identically to the original query, and the
trees are answer-disjoint by construction.  Total materialization cost:
O(n^1.5), matching the tutorial's claim.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.data.database import Database
from repro.data.relation import Relation
from repro.joins.base import atom_relation
from repro.query.cq import Atom, ConjunctiveQuery, QueryError
from repro.util.counters import Counters


@dataclass
class UnionTree:
    """One acyclic member of a union-of-trees decomposition.

    ``query`` is acyclic over ``database``'s derived relations; ``fixed``
    maps original query variables eliminated in this tree to the constant
    they are bound to (re-attached to every result of the tree).
    """

    database: Database
    query: ConjunctiveQuery
    fixed: dict[str, Any] = field(default_factory=dict)
    label: str = ""


def fourcycle_pattern(query: ConjunctiveQuery) -> tuple[list[str], list[int]]:
    """Check that ``query`` is a 4-cycle and return (variables, atom order).

    Expects four binary atoms forming x1—x2—x3—x4—x1 with four distinct
    variables, in chain order (as produced by
    :func:`repro.query.cq.cycle_query`).  Raises :class:`QueryError`
    otherwise.
    """
    if len(query.atoms) != 4:
        raise QueryError("4-cycle decomposition needs exactly 4 atoms")
    for atom in query.atoms:
        if len(atom.variables) != 2 or len(atom.variable_set) != 2:
            raise QueryError(f"atom {atom} is not binary with distinct variables")
    variables = [query.atoms[0].variables[0]]
    for i in range(4):
        first, second = query.atoms[i].variables
        if first != variables[-1]:
            raise QueryError(
                f"atom {query.atoms[i]} does not chain from {variables[-1]!r}"
            )
        variables.append(second)
    if variables[-1] != variables[0] or len(set(variables[:-1])) != 4:
        raise QueryError("atoms do not close a 4-cycle on distinct variables")
    return variables[:-1], [0, 1, 2, 3]


def fourcycle_union_of_trees(
    db: Database,
    query: ConjunctiveQuery,
    combine: Callable[[float, float], float] = operator.add,
    threshold: Optional[float] = None,
    counters: Optional[Counters] = None,
) -> list[UnionTree]:
    """Build the disjoint union-of-trees decomposition described above."""
    query.validate(db)
    (v1, v2, v3, v4), _ = fourcycle_pattern(query)

    r1 = atom_relation(db, query, 0, counters=counters, name="R1")
    r2 = atom_relation(db, query, 1, counters=counters, name="R2")
    r3 = atom_relation(db, query, 2, counters=counters, name="R3")
    r4 = atom_relation(db, query, 3, counters=counters, name="R4")

    n = max(1, max(len(r1), len(r2), len(r3), len(r4)))
    delta = threshold if threshold is not None else math.sqrt(n)

    index1 = r1.index_on((v2,))  # x2 value -> R1 rows (x1 partners)
    index3 = r3.index_on((v4,))  # x4 value -> R3 rows (x3 partners)
    heavy2 = {value[0] for value, rows in index1.items() if len(rows) > delta}
    heavy4 = {value[0] for value, rows in index3.items() if len(rows) > delta}

    trees: list[UnionTree] = []

    # ---- x2 heavy: one tree per heavy value -------------------------
    index2 = r2.index_on((v2,))
    for b in sorted(heavy2, key=repr):
        u1 = _filtered_unary(r1, v2, b, keep=v1, name="U1", counters=counters)
        u2 = _filtered_unary(r2, v2, b, keep=v3, name="U2", counters=counters)
        if len(u1) == 0 or len(u2) == 0:
            continue
        tree_db = Database([u1, u2, r3.copy("R3"), r4.copy("R4")])
        tree_query = ConjunctiveQuery(
            [
                Atom("U1", (v1,)),
                Atom("U2", (v3,)),
                Atom("R3", (v3, v4)),
                Atom("R4", (v4, v1)),
            ],
            name=f"{query.name}_heavy_{v2}",
        )
        trees.append(
            UnionTree(tree_db, tree_query, fixed={v2: b}, label=f"{v2}={b!r}")
        )

    # ---- x2 light restrictions shared by the remaining cases --------
    r1_light = _light_restriction(r1, v2, heavy2, "R1L", counters)
    r2_light = _light_restriction(r2, v2, heavy2, "R2L", counters)

    # ---- x2 light, x4 heavy: one tree per heavy x4 value ------------
    for d in sorted(heavy4, key=repr):
        u3 = _filtered_unary(r3, v4, d, keep=v3, name="U3", counters=counters)
        u4 = _filtered_unary(r4, v4, d, keep=v1, name="U4", counters=counters)
        if len(u3) == 0 or len(u4) == 0:
            continue
        tree_db = Database(
            [r1_light.copy("R1L"), r2_light.copy("R2L"), u3, u4]
        )
        tree_query = ConjunctiveQuery(
            [
                Atom("R1L", (v1, v2)),
                Atom("R2L", (v2, v3)),
                Atom("U3", (v3,)),
                Atom("U4", (v1,)),
            ],
            name=f"{query.name}_heavy_{v4}",
        )
        trees.append(
            UnionTree(tree_db, tree_query, fixed={v4: d}, label=f"{v4}={d!r}")
        )

    # ---- both light: join the two wedges -----------------------------
    j12 = _wedge(r1_light, r2_light, v2, "J12", combine, counters)
    j34 = _light_restriction(r3, v4, heavy4, "R3L", counters)
    r4_light = _light_restriction(r4, v4, heavy4, "R4L", counters)
    j34 = _wedge(j34, r4_light, v4, "J34", combine, counters)
    if len(j12) and len(j34):
        tree_db = Database([j12, j34])
        tree_query = ConjunctiveQuery(
            [Atom("J12", (v1, v2, v3)), Atom("J34", (v3, v4, v1))],
            name=f"{query.name}_light",
        )
        trees.append(UnionTree(tree_db, tree_query, fixed={}, label="light"))

    return trees


def _filtered_unary(
    relation: Relation,
    filter_var: str,
    value: Any,
    keep: str,
    name: str,
    counters: Optional[Counters],
) -> Relation:
    """σ_{filter_var = value}(relation) projected (with weights) to ``keep``."""
    index = relation.index_on((filter_var,))
    keep_position = relation.positions((keep,))[0]
    out = Relation(name, (keep,))
    for row_id in index.get((value,), ()):
        if counters is not None:
            counters.tuples_read += 1
        out.add(
            (relation.rows[row_id][keep_position],), relation.weights[row_id]
        )
    return out


def _light_restriction(
    relation: Relation,
    variable: str,
    heavy_values: set,
    name: str,
    counters: Optional[Counters],
) -> Relation:
    """Rows whose ``variable`` value is not heavy."""
    position = relation.positions((variable,))[0]
    out = Relation(name, relation.schema)
    for row, weight in zip(relation.rows, relation.weights):
        if counters is not None:
            counters.tuples_read += 1
        if row[position] not in heavy_values:
            out.add(row, weight)
    return out


def _wedge(
    left: Relation,
    right: Relation,
    join_var: str,
    name: str,
    combine: Callable[[float, float], float],
    counters: Optional[Counters],
) -> Relation:
    """Natural join of two relations sharing exactly ``join_var``.

    Used for J12 = R1L ⋈ R2L and J34 = R3L ⋈ R4L; sizes are bounded by
    n·Δ because the shared variable is light on the side indexed.
    """
    shared = [a for a in left.schema if a in right.schema]
    if shared != [join_var]:
        raise QueryError(
            f"wedge expects exactly one shared variable {join_var!r}, "
            f"got {shared}"
        )
    left_index = left.index_on((join_var,))
    right_position = right.positions((join_var,))[0]
    extra = [a for a in right.schema if a != join_var]
    extra_positions = right.positions(extra)
    out = Relation(name, tuple(left.schema) + tuple(extra))
    for row, weight in zip(right.rows, right.weights):
        if counters is not None:
            counters.tuples_read += 1
            counters.hash_probes += 1
        for left_id in left_index.get((row[right_position],), ()):
            out.add(
                left.rows[left_id] + tuple(row[p] for p in extra_positions),
                combine(left.weights[left_id], weight),
            )
            if counters is not None:
                counters.intermediate_tuples += 1
    return out
