"""Leapfrog Triejoin — a worst-case-optimal join algorithm (§3).

Veldhuizen's LFTJ computes a multiway join "holistically": one variable at a
time in a global order, intersecting — by leapfrogging seeks — the sorted
value lists of all atoms containing the current variable.  Its running time
matches the AGM bound (up to log factors), so on the adversarial triangle
instance it does O~(n^1.5) work while every binary plan does Θ(n²)
(experiment E1).

Bag semantics: the tries keep per-tuple weight lists, and a fully bound
variable assignment emits one result per combination of duplicate input
tuples, with weights combined by the ranking operator.
"""

from __future__ import annotations

import itertools
import operator
from typing import Callable, Optional, Sequence

from repro.data.database import Database
from repro.data.relation import Relation
from repro.joins.base import atom_relation, output_relation
from repro.joins.trie import Trie, TrieIterator, ordkey
from repro.query.cq import ConjunctiveQuery
from repro.util.counters import Counters


def evaluate(
    db: Database,
    query: ConjunctiveQuery,
    var_order: Optional[Sequence[str]] = None,
    counters: Optional[Counters] = None,
    combine: Callable[[float, float], float] = operator.add,
) -> Relation:
    """Evaluate ``query`` with Leapfrog Triejoin.

    ``var_order`` defaults to the query's variable order; any permutation is
    correct (order affects constants, not worst-case optimality).
    """
    query.validate(db)
    var_order = tuple(var_order or query.variables)
    if sorted(var_order) != sorted(query.variables):
        raise ValueError("var_order must be a permutation of the query variables")

    # Per atom: variable-schema relation, trie ordered by global position.
    iterators: list[TrieIterator] = []
    atom_vars: list[tuple[str, ...]] = []
    for i in range(len(query.atoms)):
        rel = atom_relation(db, query, i, counters=counters)
        order = tuple(sorted(rel.schema, key=var_order.index))
        trie = Trie(rel, order, counters=counters)
        iterators.append(trie.iterator(counters=counters))
        atom_vars.append(order)

    # For each variable level, the atoms participating there.
    participants: list[list[int]] = [
        [i for i, order in enumerate(atom_vars) if variable in order]
        for variable in var_order
    ]
    result = output_relation(query)
    out_positions = [var_order.index(v) for v in query.variables]
    binding: list = [None] * len(var_order)

    def emit() -> None:
        weight_lists = [iterators[i].weights() for i in range(len(iterators))]
        row = tuple(binding[p] for p in out_positions)
        for combo in itertools.product(*weight_lists):
            weight = combo[0]
            for w in combo[1:]:
                weight = combine(weight, w)
            result.add(row, weight)
            if counters is not None:
                counters.output_tuples += 1

    def recurse(depth: int) -> None:
        if depth == len(var_order):
            emit()
            return
        active = [iterators[i] for i in participants[depth]]
        for it in active:
            it.open()
        try:
            for value in _leapfrog(active, counters):
                binding[depth] = value
                recurse(depth + 1)
        finally:
            for it in active:
                it.up()

    recurse(0)
    return result


def _leapfrog(active: list[TrieIterator], counters: Optional[Counters]):
    """Yield values on which all active iterators agree, in sorted order.

    The classic leapfrog intersection: repeatedly seek the iterator with the
    smallest key to the current maximum key; when all keys coincide the
    value is a match.  Iterators are left positioned on the match when
    yielding, so callers can descend into them.
    """
    if any(it.at_end() for it in active):
        return
    if len(active) == 1:
        it = active[0]
        while not it.at_end():
            yield it.key()
            it.next()
        return

    active = sorted(active, key=lambda it: ordkey(it.key()))
    p = 0
    max_key = active[-1].key()
    while True:
        it = active[p]
        if counters is not None:
            counters.comparisons += 1
        if ordkey(it.key()) == ordkey(max_key):
            # All iterators agree.
            yield max_key
            it.next()
            if it.at_end():
                return
            max_key = it.key()
            p = (p + 1) % len(active)
        else:
            it.seek(max_key)
            if it.at_end():
                return
            max_key = it.key()
            p = (p + 1) % len(active)


def boolean(
    db: Database,
    query: ConjunctiveQuery,
    var_order: Optional[Sequence[str]] = None,
    counters: Optional[Counters] = None,
) -> bool:
    """Does the query have any answer?  LFTJ with early exit."""
    query.validate(db)
    var_order = tuple(var_order or query.variables)

    iterators: list[TrieIterator] = []
    atom_vars: list[tuple[str, ...]] = []
    for i in range(len(query.atoms)):
        rel = atom_relation(db, query, i, counters=counters)
        order = tuple(sorted(rel.schema, key=var_order.index))
        iterators.append(Trie(rel, order, counters=counters).iterator(counters))
        atom_vars.append(order)
    participants = [
        [i for i, order in enumerate(atom_vars) if variable in order]
        for variable in var_order
    ]

    def recurse(depth: int) -> bool:
        if depth == len(var_order):
            return True
        active = [iterators[i] for i in participants[depth]]
        for it in active:
            it.open()
        try:
            for _ in _leapfrog(active, counters):
                if recurse(depth + 1):
                    return True
            return False
        finally:
            for it in active:
                it.up()

    return recurse(0)
