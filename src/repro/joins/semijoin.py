"""Semijoins and the full reducer (§3).

Yannakakis' "secret of success": after a full-reducer pass — semijoin
reductions along the join tree, leaves-to-root then root-to-leaves — the
database is *globally consistent*: every tuple that survives participates in
at least one query answer, so no later join step can blow up on dangling
tuples.  :func:`full_reducer` implements the two passes over the
variable-schema relations of an acyclic query and returns the reduced
relations keyed by atom index.
"""

from __future__ import annotations

from typing import Optional

from repro.data.database import Database
from repro.data.relation import Relation
from repro.joins.base import atom_relation
from repro.query.cq import ConjunctiveQuery
from repro.query.hypergraph import JoinTree, join_tree_or_raise
from repro.util.counters import Counters


def semijoin(
    left: Relation, right: Relation, counters: Optional[Counters] = None
) -> Relation:
    """left ⋉ right: keep left tuples with a join partner in right.

    The join condition is equality on shared attribute names.  With no
    shared attributes the semijoin only checks non-emptiness of ``right``
    (a degenerate cross-product guard), matching relational semantics.
    """
    shared = tuple(a for a in left.schema if a in right.schema)
    if not shared:
        if len(right) == 0:
            return Relation(left.name, left.schema)
        return left.copy()
    right_keys = set()
    right_positions = right.positions(shared)
    for row in right.rows:
        if counters is not None:
            counters.tuples_read += 1
        right_keys.add(tuple(row[p] for p in right_positions))
    left_positions = left.positions(shared)
    out = Relation(left.name, left.schema)
    for row, weight in zip(left.rows, left.weights):
        if counters is not None:
            counters.tuples_read += 1
            counters.hash_probes += 1
        if tuple(row[p] for p in left_positions) in right_keys:
            out.add(row, weight)
    return out


def full_reducer(
    db: Database,
    query: ConjunctiveQuery,
    tree: Optional[JoinTree] = None,
    counters: Optional[Counters] = None,
) -> dict[int, Relation]:
    """Two semijoin passes over the join tree; returns reduced relations.

    Leaves-to-root: each parent is semijoined with every child (removing
    parent tuples with no extension below).  Root-to-leaves: each child is
    semijoined with its parent (removing child tuples with no extension
    above).  Afterwards the database is globally consistent.
    """
    query.validate(db)
    if tree is None:
        tree = join_tree_or_raise(query)
    relations = {
        i: atom_relation(db, query, i, counters=counters)
        for i in range(len(query.atoms))
    }
    # Bottom-up: visit in reverse BFS order so children are final first.
    for node in reversed(tree.order):
        for child in tree.children[node]:
            relations[node] = semijoin(
                relations[node], relations[child], counters=counters
            )
    # Top-down.
    for node in tree.order:
        for child in tree.children[node]:
            relations[child] = semijoin(
                relations[child], relations[node], counters=counters
            )
    return relations


def is_globally_consistent(
    relations: dict[int, Relation], tree: JoinTree
) -> bool:
    """Test oracle: every relation is already semijoin-reduced w.r.t. every
    tree neighbour (the fixpoint the full reducer guarantees)."""
    for node, parent in tree.parent.items():
        if parent is None:
            continue
        for a, b in ((node, parent), (parent, node)):
            reduced = semijoin(relations[a], relations[b])
            if len(reduced) != len(relations[a]):
                return False
    return True
