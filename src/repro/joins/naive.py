"""Naive join: cartesian product plus filtering.

The ground-truth oracle for every other engine in the test suite.  It
enumerates the full cross product of the atoms' relations and keeps the
combinations on which shared variables agree — O(n^m) for m atoms, so it is
guarded by an explicit size limit and only used on small instances.
"""

from __future__ import annotations

import operator
from typing import Callable, Optional

from repro.data.database import Database
from repro.data.relation import Relation
from repro.joins.base import atom_relation, output_relation
from repro.query.cq import ConjunctiveQuery, QueryError
from repro.util.counters import Counters


def evaluate(
    db: Database,
    query: ConjunctiveQuery,
    counters: Optional[Counters] = None,
    combine: Callable[[float, float], float] = operator.add,
    max_combinations: int = 50_000_000,
) -> Relation:
    """Evaluate by exhaustive search over tuple combinations.

    Raises :class:`QueryError` when the cross-product size exceeds
    ``max_combinations`` — the caller should use a real engine instead.
    """
    query.validate(db)
    relations = [
        atom_relation(db, query, i, counters=counters)
        for i in range(len(query.atoms))
    ]
    size = 1
    for relation in relations:
        size *= max(1, len(relation))
        if size > max_combinations:
            raise QueryError(
                f"naive join would enumerate more than {max_combinations} "
                "combinations; use a real engine"
            )

    result = output_relation(query)
    binding: dict[str, object] = {}

    def recurse(depth: int, weight_so_far: float) -> None:
        if depth == len(relations):
            row = tuple(binding[v] for v in query.variables)
            result.add(row, weight_so_far)
            if counters is not None:
                counters.output_tuples += 1
            return
        relation = relations[depth]
        for row, weight in zip(relation.rows, relation.weights):
            if counters is not None:
                counters.intermediate_tuples += 1
            bound: list[str] = []
            ok = True
            for variable, value in zip(relation.schema, row):
                if variable in binding:
                    if counters is not None:
                        counters.comparisons += 1
                    if binding[variable] != value:
                        ok = False
                        break
                else:
                    binding[variable] = value
                    bound.append(variable)
            if ok:
                combined = (
                    weight if depth == 0 else combine(weight_so_far, weight)
                )
                recurse(depth + 1, combined)
            for variable in bound:
                del binding[variable]

    recurse(0, 0.0)
    return result
