"""Shared helpers for the join engines.

The central convenience is :func:`atom_relation`: engines work on
*variable-schema* relations — the atom's relation re-keyed to the atom's
query variables, with intra-atom repeated-variable equalities already
enforced and repeated columns dropped.  After this normalization step every
join in the library is a plain natural join on attribute names.
"""

from __future__ import annotations

from collections import Counter as Multiset
from typing import Iterable, Optional

from repro.data.database import Database
from repro.data.relation import Relation
from repro.query.cq import ConjunctiveQuery
from repro.util.counters import Counters


def atom_relation(
    db: Database,
    query: ConjunctiveQuery,
    atom_index: int,
    counters: Optional[Counters] = None,
    name: Optional[str] = None,
) -> Relation:
    """The atom's relation with query variables as its schema.

    Repeated variables inside the atom (e.g. ``E(x, x)``) become equality
    selections; only the first occurrence of each variable is kept as a
    column.  Weights are preserved per tuple.
    """
    atom = query.atoms[atom_index]
    source = db[atom.relation]
    distinct_vars: list[str] = []
    keep_positions: list[int] = []
    for position, variable in enumerate(atom.variables):
        if variable not in distinct_vars:
            distinct_vars.append(variable)
            keep_positions.append(position)

    out = Relation(name or f"{atom.relation}#{atom_index}", tuple(distinct_vars))
    needs_filter = len(distinct_vars) != len(atom.variables)
    first_position = {v: atom.variables.index(v) for v in distinct_vars}
    for row, weight in zip(source.rows, source.weights):
        if counters is not None:
            counters.tuples_read += 1
        if needs_filter:
            consistent = True
            for position, variable in enumerate(atom.variables):
                if row[position] != row[first_position[variable]]:
                    consistent = False
                    break
            if not consistent:
                continue
        out.add(tuple(row[p] for p in keep_positions), weight)
    return out


def multiset(relation: Relation, round_digits: int = 9) -> Multiset:
    """Multiset of ``(row, rounded_weight)`` — the cross-engine test oracle.

    Weights are rounded so engines that combine weights in different orders
    (floating-point non-associativity) still compare equal.
    """
    return Multiset(
        (row, round(weight, round_digits))
        for row, weight in zip(relation.rows, relation.weights)
    )


def weights_sorted(relation: Relation) -> list[float]:
    """Sorted weights of a relation (rank-order test oracle)."""
    return sorted(relation.weights)


def output_relation(query: ConjunctiveQuery, name: Optional[str] = None) -> Relation:
    """Empty result relation with the query's output schema."""
    return Relation(name or f"{query.name}_result", query.variables)


def reorder_to_query_schema(
    relation: Relation, query: ConjunctiveQuery, counters: Optional[Counters] = None
) -> Relation:
    """Reorder a result relation's columns into the query's variable order."""
    if relation.schema == query.variables:
        return relation
    positions = relation.positions(query.variables)
    out = output_relation(query, relation.name)
    for row, weight in zip(relation.rows, relation.weights):
        out.add(tuple(row[p] for p in positions), weight)
    return out


def iter_weighted(relation: Relation) -> Iterable[tuple[tuple, float]]:
    """Iterate ``(row, weight)`` pairs."""
    return zip(relation.rows, relation.weights)
