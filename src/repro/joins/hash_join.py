"""Binary hash join on variable-schema relations.

The building block of the "two-relations-at-a-time" plans favoured by
database optimizers (§3).  Joins are natural joins on shared attribute
names; weights combine with the caller's accumulation operator.  Every
produced tuple increments ``intermediate_tuples`` in the supplied counters,
which is the series the triangle experiment (E1) reports: on the adversarial
instance every pairwise join materializes Θ(n²) tuples while the final
output is linear.
"""

from __future__ import annotations

import operator
from typing import Callable, Optional

from repro.data.relation import Relation
from repro.obs.memory import join_build_entry_bytes, row_bytes, tracker_of
from repro.util.counters import Counters


def hash_join(
    left: Relation,
    right: Relation,
    counters: Optional[Counters] = None,
    combine: Callable[[float, float], float] = operator.add,
    name: Optional[str] = None,
) -> Relation:
    """Natural hash join of two variable-schema relations.

    The smaller input is used as the build side.  Output schema: left's
    attributes followed by right's attributes not already present.
    """
    shared = tuple(a for a in left.schema if a in right.schema)
    build, probe = (left, right) if len(left) <= len(right) else (right, left)
    swapped = build is right

    build_index = build.index_on(shared) if shared else {(): list(range(len(build)))}
    probe_positions = probe.positions(shared) if shared else ()

    # The build index lives only for this join; account it as transient.
    space = tracker_of(counters)
    build_gauge = None
    build_entries = 0
    if space is not None:
        build_gauge = space.gauge("join.build", join_build_entry_bytes())
        build_entries = sum(len(ids) for ids in build_index.values())
        build_gauge.add(build_entries)

    out_schema = tuple(left.schema) + tuple(
        a for a in right.schema if a not in left.schema
    )
    out = Relation(name or f"({left.name}⋈{right.name})", out_schema)

    # Precompute how to assemble an output row from (left_row, right_row).
    right_extra_positions = [
        right.schema.index(a) for a in out_schema if a not in left.schema
    ]

    # Accumulate whole output columns, then bulk-load once: the result
    # is materialized with a single arity/finiteness sweep and a single
    # cache invalidation instead of a per-row ``add`` (the hot path of
    # every batch-engine join; E1's adversarial instance materializes
    # Θ(n²) tuples here).
    out_rows: list[tuple] = []
    out_weights: list[float] = []
    build_rows, build_weights = build.rows, build.weights
    for probe_id, probe_row in enumerate(probe.rows):
        if counters is not None:
            counters.tuples_read += 1
            counters.hash_probes += 1
        key = tuple(probe_row[p] for p in probe_positions)
        matches = build_index.get(key)
        if not matches:
            continue
        probe_weight = probe.weights[probe_id]
        if swapped:
            out_rows.extend(
                probe_row
                + tuple(build_rows[b][p] for p in right_extra_positions)
                for b in matches
            )
            out_weights.extend(
                combine(probe_weight, build_weights[b]) for b in matches
            )
        else:
            out_rows.extend(
                build_rows[b]
                + tuple(probe_row[p] for p in right_extra_positions)
                for b in matches
            )
            out_weights.extend(
                combine(build_weights[b], probe_weight) for b in matches
            )
    out.bulk_load(out_rows, out_weights)
    if counters is not None:
        counters.intermediate_tuples += len(out_rows)
    if space is not None:
        space.gauge("join.rows", row_bytes(len(out_schema))).add(len(out_rows))
        build_gauge.remove(build_entries)
    return out
