"""Left-deep binary join plans with intermediate-result accounting.

This is the strawman of the tutorial's Part 2: treating a multiway join as a
sequence of pairwise joins.  On acyclic queries with a good order this is
fine; on cyclic queries *every* order can be forced to materialize
intermediate results asymptotically larger than the output (the adversarial
triangle instance — experiment E1).

Provided here:

- :func:`evaluate_left_deep` — evaluate a given atom order;
- :func:`all_left_deep_orders` — enumerate connected ("no cross product")
  orders, used by benches to show that *no* binary plan escapes the blowup;
- :func:`greedy_plan` — a textbook optimizer stand-in that always joins the
  pair with the smallest estimated output next;
- :func:`best_left_deep` / :func:`worst_left_deep` — exact best/worst order
  by measured intermediate size (exhaustive; for constant-size queries).
"""

from __future__ import annotations

import itertools
import operator
from typing import Callable, Iterable, Optional, Sequence

from repro.data.database import Database
from repro.data.relation import Relation
from repro.joins.base import atom_relation, reorder_to_query_schema
from repro.joins.hash_join import hash_join
from repro.query.cq import ConjunctiveQuery, QueryError
from repro.util.counters import Counters


def evaluate_left_deep(
    db: Database,
    query: ConjunctiveQuery,
    order: Optional[Sequence[int]] = None,
    counters: Optional[Counters] = None,
    combine: Callable[[float, float], float] = operator.add,
) -> Relation:
    """Evaluate ``query`` with a left-deep plan over ``order`` (atom ids).

    Defaults to :func:`greedy_plan`'s order.  The result schema is the
    query's variable order.
    """
    query.validate(db)
    if order is None:
        order = greedy_plan(db, query)
    order = list(order)
    if sorted(order) != list(range(len(query.atoms))):
        raise QueryError(f"order {order} is not a permutation of atom ids")

    current = atom_relation(db, query, order[0], counters=counters)
    for atom_index in order[1:]:
        right = atom_relation(db, query, atom_index, counters=counters)
        current = hash_join(current, right, counters=counters, combine=combine)
    result = reorder_to_query_schema(current, query)
    if counters is not None:
        counters.output_tuples += len(result)
        # The final join's tuples are outputs, not intermediates.
        counters.intermediate_tuples -= len(result)
    return result


def all_left_deep_orders(
    query: ConjunctiveQuery, connected_only: bool = True
) -> Iterable[tuple[int, ...]]:
    """All left-deep atom orders; by default only cross-product-free ones.

    An order is *connected* if every atom after the first shares a variable
    with the union of the preceding atoms — the space real optimizers
    search.
    """
    indexes = range(len(query.atoms))
    for order in itertools.permutations(indexes):
        if not connected_only or _is_connected_order(query, order):
            yield order


def _is_connected_order(query: ConjunctiveQuery, order: Sequence[int]) -> bool:
    seen = set(query.atoms[order[0]].variable_set)
    for atom_index in order[1:]:
        atom_vars = query.atoms[atom_index].variable_set
        if not (atom_vars & seen):
            return False
        seen |= atom_vars
    return True


def greedy_plan(db: Database, query: ConjunctiveQuery) -> list[int]:
    """Greedy order: start from the smallest atom, repeatedly add the
    connected atom minimizing an independence-assumption size estimate.

    A stand-in for a textbook cost-based optimizer — deliberately simple,
    since the tutorial's point is that *no* binary order can win on the
    adversarial cyclic instances.
    """
    query.validate(db)
    sizes = [len(db[atom.relation]) for atom in query.atoms]
    remaining = set(range(len(query.atoms)))
    first = min(remaining, key=lambda i: (sizes[i], i))
    order = [first]
    remaining.remove(first)
    bound = set(query.atoms[first].variable_set)
    estimate = float(sizes[first])
    while remaining:
        connected = [i for i in remaining if query.atoms[i].variable_set & bound]
        candidates = connected or sorted(remaining)

        def estimated_growth(i: int) -> float:
            shared = len(query.atoms[i].variable_set & bound)
            # Each shared variable is assumed to filter by one "average
            # fanout" factor; a crude System-R style estimate.
            selectivity = (1.0 / max(2.0, sizes[i] ** 0.5)) ** shared
            return estimate * sizes[i] * selectivity

        best = min(candidates, key=lambda i: (estimated_growth(i), i))
        estimate = max(1.0, estimated_growth(best))
        order.append(best)
        bound |= query.atoms[best].variable_set
        remaining.remove(best)
    return order


def _measure_order(
    db: Database,
    query: ConjunctiveQuery,
    order: Sequence[int],
    combine: Callable[[float, float], float],
) -> int:
    counters = Counters()
    evaluate_left_deep(db, query, order, counters=counters, combine=combine)
    return counters.intermediate_tuples


def best_left_deep(
    db: Database,
    query: ConjunctiveQuery,
    combine: Callable[[float, float], float] = operator.add,
) -> tuple[tuple[int, ...], int]:
    """(order, intermediate tuples) of the best connected left-deep plan."""
    measured = [
        (order, _measure_order(db, query, order, combine))
        for order in all_left_deep_orders(query)
    ]
    if not measured:
        raise QueryError("query has no connected left-deep order")
    return min(measured, key=lambda pair: pair[1])


def worst_left_deep(
    db: Database,
    query: ConjunctiveQuery,
    combine: Callable[[float, float], float] = operator.add,
) -> tuple[tuple[int, ...], int]:
    """(order, intermediate tuples) of the worst connected left-deep plan."""
    measured = [
        (order, _measure_order(db, query, order, combine))
        for order in all_left_deep_orders(query)
    ]
    if not measured:
        raise QueryError("query has no connected left-deep order")
    return max(measured, key=lambda pair: pair[1])
