"""Join algorithms (tutorial Part 2).

Engines share one contract: ``evaluate(db, query, counters=None,
combine=add)`` returns a :class:`~repro.data.relation.Relation` whose schema
is the query's variables and whose tuple weights combine the weights of the
participating input tuples (bag semantics — duplicate input rows yield
duplicate outputs).

Implemented engines, in the order the tutorial discusses them:

- :mod:`repro.joins.naive` — cartesian product + filter; ground truth for
  the test suite.
- :mod:`repro.joins.hash_join` / :mod:`repro.joins.binary_plan` — the
  classic two-relations-at-a-time approach of database optimizers, with
  intermediate-result accounting (the quantity that blows up on cyclic
  queries, §3).
- :mod:`repro.joins.semijoin` / :mod:`repro.joins.yannakakis` — full
  reducers and the O~(n + r) Yannakakis algorithm for acyclic queries.
- :mod:`repro.joins.generic_join` — Generic-Join, worst-case optimal
  (matches the AGM bound).
- :mod:`repro.joins.trie` / :mod:`repro.joins.leapfrog` — Leapfrog
  Triejoin, the other WCO algorithm the tutorial cites.
- :mod:`repro.joins.boolean` — Boolean query evaluation, including the
  O~(n^1.5) heavy/light 4-cycle detection behind the introduction's claim.
"""

from repro.joins.base import atom_relation, multiset
from repro.joins.binary_plan import evaluate_left_deep, greedy_plan, all_left_deep_orders
from repro.joins.generic_join import evaluate as generic_join
from repro.joins.leapfrog import evaluate as leapfrog_join
from repro.joins.naive import evaluate as naive_join
from repro.joins.yannakakis import evaluate as yannakakis_join

__all__ = [
    "atom_relation",
    "multiset",
    "naive_join",
    "evaluate_left_deep",
    "greedy_plan",
    "all_left_deep_orders",
    "yannakakis_join",
    "generic_join",
    "leapfrog_join",
]
