"""Generic-Join — worst-case-optimal multiway join (§3).

The NPRR / Generic-Join insight: process one variable at a time and, at each
step, iterate over the *smallest* candidate set among the atoms containing
that variable while probing the others by hash — the "intersect, don't
enumerate" principle.  A short argument via the query decomposition lemma
shows total running time O~(AGM bound), i.e. worst-case optimality.

This implementation uses nested hash indexes (value -> child index) per
atom, built at query time (the tutorial's cost model allows no precomputed
structures).  Bag semantics and weight combination are handled exactly as in
:mod:`repro.joins.leapfrog`.
"""

from __future__ import annotations

import itertools
import operator
from typing import Callable, Optional, Sequence

from repro.data.database import Database
from repro.data.relation import Relation
from repro.joins.base import atom_relation, output_relation
from repro.query.cq import ConjunctiveQuery
from repro.util.counters import Counters


def _build_nested_index(
    rel: Relation, order: Sequence[str], counters: Optional[Counters]
) -> dict:
    """Nested dicts level-per-attribute; last level maps to weight lists."""
    positions = rel.positions(order)
    root: dict = {}
    for row, weight in zip(rel.rows, rel.weights):
        if counters is not None:
            counters.tuples_read += 1
        node = root
        for p in positions[:-1]:
            node = node.setdefault(row[p], {})
        node.setdefault(row[positions[-1]], []).append(weight)
    return root


def evaluate(
    db: Database,
    query: ConjunctiveQuery,
    var_order: Optional[Sequence[str]] = None,
    counters: Optional[Counters] = None,
    combine: Callable[[float, float], float] = operator.add,
) -> Relation:
    """Evaluate ``query`` with Generic-Join over hash tries."""
    query.validate(db)
    var_order = tuple(var_order or query.variables)
    if sorted(var_order) != sorted(query.variables):
        raise ValueError("var_order must be a permutation of the query variables")

    atom_orders: list[tuple[str, ...]] = []
    roots: list[dict] = []
    for i in range(len(query.atoms)):
        rel = atom_relation(db, query, i, counters=counters)
        order = tuple(sorted(rel.schema, key=var_order.index))
        atom_orders.append(order)
        roots.append(_build_nested_index(rel, order, counters))

    participants: list[list[int]] = [
        [i for i, order in enumerate(atom_orders) if variable in order]
        for variable in var_order
    ]

    result = output_relation(query)
    out_positions = [var_order.index(v) for v in query.variables]
    binding: list = [None] * len(var_order)
    # Current node per atom (descends as its variables get bound).  The
    # leaf "node" is the weight list itself.
    node_stack: list = [[root] for root in roots]

    def emit() -> None:
        weight_lists = [node_stack[i][-1] for i in range(len(roots))]
        row = tuple(binding[p] for p in out_positions)
        for combo in itertools.product(*weight_lists):
            weight = combo[0]
            for w in combo[1:]:
                weight = combine(weight, w)
            result.add(row, weight)
            if counters is not None:
                counters.output_tuples += 1

    def recurse(depth: int) -> None:
        if depth == len(var_order):
            emit()
            return
        active = participants[depth]
        # Generic-Join's key step: iterate the smallest candidate set.
        proposer = min(active, key=lambda i: len(node_stack[i][-1]))
        others = [i for i in active if i != proposer]
        for value in node_stack[proposer][-1]:
            if counters is not None:
                counters.hash_probes += len(others)
            children = []
            ok = True
            for i in others:
                child = node_stack[i][-1].get(value)
                if child is None:
                    ok = False
                    break
                children.append((i, child))
            if not ok:
                continue
            binding[depth] = value
            node_stack[proposer].append(node_stack[proposer][-1][value])
            for i, child in children:
                node_stack[i].append(child)
            recurse(depth + 1)
            node_stack[proposer].pop()
            for i, _ in children:
                node_stack[i].pop()

    recurse(0)
    return result


def boolean(
    db: Database,
    query: ConjunctiveQuery,
    var_order: Optional[Sequence[str]] = None,
    counters: Optional[Counters] = None,
) -> bool:
    """Any answers?  Generic-Join with early exit."""
    query.validate(db)
    var_order = tuple(var_order or query.variables)

    atom_orders: list[tuple[str, ...]] = []
    roots: list[dict] = []
    for i in range(len(query.atoms)):
        rel = atom_relation(db, query, i, counters=counters)
        order = tuple(sorted(rel.schema, key=var_order.index))
        atom_orders.append(order)
        roots.append(_build_nested_index(rel, order, counters))
    participants = [
        [i for i, order in enumerate(atom_orders) if variable in order]
        for variable in var_order
    ]
    node_stack: list = [[root] for root in roots]

    def recurse(depth: int) -> bool:
        if depth == len(var_order):
            return True
        active = participants[depth]
        proposer = min(active, key=lambda i: len(node_stack[i][-1]))
        others = [i for i in active if i != proposer]
        for value in node_stack[proposer][-1]:
            if counters is not None:
                counters.hash_probes += len(others)
            children = []
            ok = True
            for i in others:
                child = node_stack[i][-1].get(value)
                if child is None:
                    ok = False
                    break
                children.append((i, child))
            if not ok:
                continue
            node_stack[proposer].append(node_stack[proposer][-1][value])
            for i, child in children:
                node_stack[i].append(child)
            found = recurse(depth + 1)
            node_stack[proposer].pop()
            for i, _ in children:
                node_stack[i].pop()
            if found:
                return True
        return False

    return recurse(0)
