"""Arrival processes: *when* requests fire, decoupled from *what* they are.

Every process turns ``(rng, duration, lanes)`` into a finite per-lane
schedule of start offsets **before the run begins**.  That up-front
materialization is the determinism contract of the whole load
generator: the trace (templates, parameters, mutation order, event
count) is a pure function of the seed, and wall-clock jitter during
execution can delay events but never change them.  ``duration`` is
therefore a *schedule horizon*, not a kill switch — a run always
executes its full schedule, possibly finishing late on a slow server
(which is exactly the overload signal an open-loop test exists to
surface).

Three classics:

- :class:`ClosedLoop` — N clients, each issuing its next request the
  moment the previous one completes (offsets are ``None``: "no pacing").
  Throughput adapts to the server; latency hides queueing.
- :class:`OpenLoopPoisson` — requests fire on a Poisson clock regardless
  of completions (the AsyncFlow / classic load-testing model).  Queueing
  delay shows up as tail latency, which is the honest measurement.
- :class:`BurstyOnOff` — a Poisson process modulated by an on/off duty
  cycle: bursts at a high rate, lulls at a low one.
"""

from __future__ import annotations

import random
from typing import Optional


class ArrivalProcess:
    """Builds one lane's schedule of start offsets (seconds from t0)."""

    def lane_offsets(
        self, rng: random.Random, duration: float, lanes: int
    ) -> list[Optional[float]]:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class ClosedLoop(ArrivalProcess):
    """Back-to-back requests per client, sized by a nominal rate.

    ``ops_per_client_s`` only fixes the *schedule length*
    (``duration * ops_per_client_s`` events per lane); execution runs
    them as fast as responses come back, which is what "closed loop"
    means.
    """

    def __init__(self, ops_per_client_s: float = 25.0) -> None:
        if ops_per_client_s <= 0:
            raise ValueError("ops_per_client_s must be positive")
        self.ops_per_client_s = ops_per_client_s

    def lane_offsets(
        self, rng: random.Random, duration: float, lanes: int
    ) -> list[Optional[float]]:
        count = max(1, int(duration * self.ops_per_client_s))
        return [None] * count

    def describe(self) -> str:
        return f"closed-loop ({self.ops_per_client_s:g} op/s/client nominal)"


class OpenLoopPoisson(ArrivalProcess):
    """Poisson arrivals at ``rate`` total ops/s, split evenly over lanes.

    Splitting a Poisson stream over lanes by thinning keeps each lane
    Poisson at ``rate / lanes``; drawing each lane's gaps from its own
    rng keeps lane schedules independent of how many lanes there are
    before this one.
    """

    def __init__(self, rate: float = 50.0) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate

    def lane_offsets(
        self, rng: random.Random, duration: float, lanes: int
    ) -> list[Optional[float]]:
        lane_rate = self.rate / lanes
        offsets: list[Optional[float]] = []
        t = rng.expovariate(lane_rate)
        while t < duration:
            offsets.append(t)
            t += rng.expovariate(lane_rate)
        return offsets

    def describe(self) -> str:
        return f"open-loop Poisson ({self.rate:g} op/s total)"


class BurstyOnOff(ArrivalProcess):
    """Poisson arrivals whose rate alternates between on and off phases.

    The cycle starts "on": ``on_s`` seconds at ``on_rate`` total ops/s,
    then ``off_s`` at ``off_rate``, repeating until the horizon.  Gaps
    are drawn at the rate of the phase the *current* time falls in —
    a standard Markov-modulated Poisson approximation that is exact in
    the limit of gaps short against the phase length.
    """

    def __init__(
        self,
        on_rate: float = 150.0,
        off_rate: float = 10.0,
        on_s: float = 1.0,
        off_s: float = 2.0,
    ) -> None:
        if min(on_rate, off_rate) <= 0 or min(on_s, off_s) <= 0:
            raise ValueError("rates and phase lengths must be positive")
        self.on_rate = on_rate
        self.off_rate = off_rate
        self.on_s = on_s
        self.off_s = off_s

    def lane_offsets(
        self, rng: random.Random, duration: float, lanes: int
    ) -> list[Optional[float]]:
        cycle = self.on_s + self.off_s
        offsets: list[Optional[float]] = []
        t = 0.0
        while True:
            phase_rate = (
                self.on_rate if (t % cycle) < self.on_s else self.off_rate
            )
            t += rng.expovariate(phase_rate / lanes)
            if t >= duration:
                return offsets
            offsets.append(t)

    def describe(self) -> str:
        return (
            f"bursty on/off ({self.on_rate:g} op/s for {self.on_s:g}s, "
            f"{self.off_rate:g} op/s for {self.off_s:g}s)"
        )
