"""Traffic generation, load-testing, and SLO reporting for the any-k stack.

Any-k's headline property — low time-to-first/next result — is a
*latency* claim, and latency claims are only meaningful under load:
many concurrent clients, skewed template popularity, bursty arrivals,
mutations racing long-lived cursors.  This package is the harness that
measures exactly that, end to end against ``repro-serve`` or in-process
against :class:`~repro.server.service.QueryService`.

Layers (each usable on its own):

- :mod:`repro.workload.sampling` — seeded Zipfian / uniform / hotspot
  popularity samplers;
- :mod:`repro.workload.arrival` — closed-loop, open-loop Poisson, and
  bursty on/off arrival processes, materialized into schedules up front
  so a seed fully determines the trace;
- :mod:`repro.workload.scenarios` — query/mutation template pools and
  the built-in :data:`~repro.workload.scenarios.SCENARIOS` registry;
  :func:`~repro.workload.scenarios.build_trace` is the determinism
  boundary;
- :mod:`repro.util.histogram` — mergeable fixed-bucket latency
  histograms (shard-per-thread, fold at the end);
- :mod:`repro.workload.metrics` — per-op latency, time-to-first/k'th
  result, throughput windows, and the SLO report (text + JSON) with
  per-spec burn-rate verdicts (:func:`~repro.workload.metrics.evaluate_slos`);
- :mod:`repro.workload.driver` — the threaded multi-client wire and
  in-process drivers;
- :mod:`repro.workload.validate` — sampled pages replayed against a
  serial recompute on the cursor's pinned snapshot, so every load test
  is also a correctness test;
- :mod:`repro.workload.cli` — the ``repro-loadgen`` console script.

Quickstart::

    from repro.workload import run_scenario

    result = run_scenario("read-mostly", seed=7, duration=5, clients=4)
    print(result.report["ttfr_ms"])     # time-to-first-result percentiles
    assert result.validation.mismatches == []
"""

from repro.workload.arrival import (
    ArrivalProcess,
    BurstyOnOff,
    ClosedLoop,
    OpenLoopPoisson,
)
from repro.workload.driver import (
    InProcessConnection,
    LoadResult,
    WireConnection,
    run_scenario,
    run_trace,
)
from repro.util.histogram import DEFAULT_BOUNDS, Histogram, geometric_bounds
from repro.workload.metrics import (
    MetricsCollector,
    build_report,
    evaluate_slos,
    render_text,
)
from repro.workload.sampling import (
    HotspotSampler,
    Sampler,
    UniformSampler,
    ZipfianSampler,
    make_sampler,
)
from repro.workload.scenarios import (
    SCENARIOS,
    FloatParam,
    IntParam,
    MutationTemplate,
    QueryTemplate,
    Request,
    Scenario,
    Trace,
    build_trace,
)
from repro.workload.validate import (
    SampledPage,
    ValidationResult,
    normalize_page,
    verify_samples,
)

__all__ = [
    "ArrivalProcess",
    "BurstyOnOff",
    "ClosedLoop",
    "DEFAULT_BOUNDS",
    "FloatParam",
    "Histogram",
    "HotspotSampler",
    "InProcessConnection",
    "IntParam",
    "LoadResult",
    "MetricsCollector",
    "MutationTemplate",
    "OpenLoopPoisson",
    "QueryTemplate",
    "Request",
    "SCENARIOS",
    "SampledPage",
    "Sampler",
    "Scenario",
    "Trace",
    "UniformSampler",
    "ValidationResult",
    "WireConnection",
    "ZipfianSampler",
    "build_report",
    "build_trace",
    "evaluate_slos",
    "geometric_bounds",
    "make_sampler",
    "normalize_page",
    "render_text",
    "run_scenario",
    "run_trace",
    "verify_samples",
]
