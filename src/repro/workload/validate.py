"""Validation under load: replay sampled pages against a serial recompute.

Load tests double as correctness tests for the session/parallel/dynamic
layers: the driver samples a fraction of the pages it receives and,
after the run, replays each against a **fresh serial recompute on the
cursor's pinned snapshot**.

The replay works because every moving part is pinned or deterministic:

- the ``query`` response reports the snapshot ``version`` the cursor is
  pinned to, and snapshot isolation guarantees every later page drains
  that exact generation;
- all mutations ride the driver's single mutation lane, so the
  ``mutate`` responses' version ids enumerate the server's commit
  history 2, 3, … completely and in order — a shadow
  :class:`~repro.dynamic.VersionedDatabase` built from the scenario's
  dataset spec can reconstruct *any* version by replaying that prefix;
- ranked streams are deterministic across engines, worker counts, and
  pause/resume boundaries (tie-stabilized ordering, PR 3), so the
  serial recompute must agree **positionally**, page offset by page
  offset, not just as a set.

A mismatch therefore isolates a real bug in cursor resumption, shard
merging, snapshot pinning, or cache invalidation — under genuine
concurrency, which is exactly where those bugs live.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import repro.sql
from repro.data.database import Database
from repro.dynamic import VersionedDatabase
from repro.util.lru import LruCache


@dataclass(frozen=True)
class SampledPage:
    """One page the driver kept for replay."""

    sql: str
    version: int  # snapshot generation the cursor was pinned to
    offset: int  # rows already emitted by this cursor before the page
    rows: tuple  # normalized ((row, weight), ...) as received


@dataclass
class Mismatch:
    sql: str
    version: int
    offset: int
    detail: str


def normalize_page(rows) -> tuple:
    """Wire/in-process ``[[row, weight], ...]`` pages into comparable
    ``((row_tuple, weight), ...)`` — weights rounded so a JSON float
    round trip can never manufacture a mismatch."""
    out = []
    for row, weight in rows:
        if isinstance(weight, (list, tuple)):
            weight = tuple(round(float(w), 9) for w in weight)
        else:
            weight = round(float(weight), 9)
        out.append((tuple(row), weight))
    return tuple(out)


@dataclass
class ValidationResult:
    sampled_pages: int = 0
    checked: int = 0
    unverifiable: int = 0
    mismatches: list = field(default_factory=list)

    def to_jsonable(self) -> dict:
        return {
            "enabled": True,
            "sampled_pages": self.sampled_pages,
            "checked": self.checked,
            "unverifiable": self.unverifiable,
            "mismatches": len(self.mismatches),
            "first_mismatches": [
                {
                    "sql": m.sql,
                    "version": m.version,
                    "offset": m.offset,
                    "detail": m.detail,
                }
                for m in self.mismatches[:5]
            ],
        }


def verify_samples(
    initial_db: Callable[[], Database],
    mutation_log: list[tuple[int, str]],
    samples: list[SampledPage],
    recompute_cache: int = 256,
) -> ValidationResult:
    """Replay ``samples`` against serial recomputes on a shadow database.

    ``initial_db`` builds a pristine copy of the dataset the server
    started from (version 1); ``mutation_log`` is the driver's record of
    ``(committed_version, sql)`` from its ``mutate`` responses.  Samples
    are checked in version order so the shadow only ever rolls forward.
    """
    result = ValidationResult(sampled_pages=len(samples))
    if not samples:
        return result
    shadow = VersionedDatabase(initial_db(), copy=False)
    pending = sorted(mutation_log)
    applied = 0
    # Bounded by the shared LRU (also backing the plan/stats caches):
    # each recompute is a full ranked-query execution, so hot
    # (version, sql) keys must survive cache pressure.
    expected_cache = LruCache(recompute_cache)
    for sample in sorted(samples, key=lambda s: s.version):
        # Roll the shadow forward to the sample's generation.
        while shadow.version < sample.version and applied < len(pending):
            version, sql = pending[applied]
            if version != shadow.version + 1:
                break  # a gap: someone else mutated the server
            repro.sql.mutate(shadow, sql)
            applied += 1
        if shadow.version != sample.version:
            result.unverifiable += 1
            continue
        key = (sample.version, sample.sql)
        expected = expected_cache.get(key)
        if expected is None:
            expected = normalize_page(
                repro.sql.query(shadow.snapshot(), sample.sql).fetchall()
            )
            expected_cache.put(key, expected)
        result.checked += 1
        want = expected[sample.offset : sample.offset + len(sample.rows)]
        if want != sample.rows:
            result.mismatches.append(
                Mismatch(
                    sql=sample.sql,
                    version=sample.version,
                    offset=sample.offset,
                    detail=_first_divergence(want, sample.rows),
                )
            )
    return result


def _first_divergence(want: tuple, got: tuple) -> str:
    if len(want) != len(got):
        return f"page length: recompute={len(want)} observed={len(got)}"
    for i, (w, g) in enumerate(zip(want, got)):
        if w != g:
            return f"row {i}: recompute={w!r} observed={g!r}"
    return "pages differ"  # pragma: no cover - guarded by != above
