"""Measurement: per-op latency, TTFR/TTK, throughput windows, SLO report.

Each driver lane records into its own :class:`MetricsCollector` — no
locks on the hot path — and the run merges them at the end (histograms
merge exactly; see :mod:`repro.util.histogram`).  The merged collector
plus run metadata becomes the SLO report — including per-spec burn-rate
verdicts from :func:`evaluate_slos` (same spec language as the server's
:mod:`repro.obs.slo` engine) — rendered both as text for humans and as
a JSON document (``BENCH_workload.json``) for trend tracking.

Latency taxonomy (all wall-clock at the driver, ms):

- ``query`` — the opening round trip (parse/plan/admission + inline
  prefetch);
- ``fetch`` — one resumed page of the ranked stream;
- ``mutate`` — one INSERT/DELETE commit;
- ``ttfr`` — time from issuing the query to holding the *first* ranked
  row, the any-k headline metric;
- ``ttk`` — time from issuing the query to the stream completing (the
  LIMIT-k'th row), the anytime counterpart.
"""

from __future__ import annotations

from collections import Counter as Multiset
from typing import Optional, Sequence

from repro.obs.slo import evaluate_specs, parse_slos, render_slo_report
from repro.util.histogram import Histogram

#: The ops that get their own latency histogram.
OPS = ("query", "fetch", "mutate")


class MetricsCollector:
    """One lane's (or the merged run's) measurements."""

    def __init__(self) -> None:
        self.op_latency = {op: Histogram() for op in OPS}
        self.ttfr = Histogram()
        self.ttk = Histogram()
        self.errors: Multiset = Multiset()
        self.rows = 0
        self.requests = 0
        #: 1-second windows: seconds-since-t0 -> completed ops, for
        #: peak-throughput reporting.
        self.windows: Multiset = Multiset()

    # ------------------------------------------------------------------
    # Recording (single-threaded per collector)
    # ------------------------------------------------------------------
    def record_op(self, op: str, latency_ms: float, at_s: float) -> None:
        self.op_latency[op].record(latency_ms)
        self.requests += 1
        self.windows[int(at_s)] += 1

    def record_ttfr(self, latency_ms: float) -> None:
        self.ttfr.record(latency_ms)

    def record_ttk(self, latency_ms: float) -> None:
        self.ttk.record(latency_ms)

    def record_rows(self, n: int) -> None:
        self.rows += n

    def record_error(self, code: str) -> None:
        self.errors[code] += 1

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsCollector") -> "MetricsCollector":
        for op in OPS:
            self.op_latency[op].merge(other.op_latency[op])
        self.ttfr.merge(other.ttfr)
        self.ttk.merge(other.ttk)
        self.errors.update(other.errors)
        self.rows += other.rows
        self.requests += other.requests
        self.windows.update(other.windows)
        return self

    @property
    def error_count(self) -> int:
        return sum(self.errors.values())

    def peak_window_ops(self) -> int:
        return max(self.windows.values(), default=0)

    def histogram_for(self, indicator: str) -> Optional[Histogram]:
        """Map an SLO latency indicator to the matching histogram.

        Accepts the op names (``query``/``fetch``/``mutate``) plus the
        driver's derived metrics: ``ttfr`` (alias ``ttf`` — the server's
        name for the same idea) and ``ttk``.
        """
        if indicator in self.op_latency:
            return self.op_latency[indicator]
        if indicator in ("ttfr", "ttf"):
            return self.ttfr
        if indicator == "ttk":
            return self.ttk
        return None


def evaluate_slos(metrics: MetricsCollector, slos: Sequence[str]) -> dict:
    """Grade one run's merged collector against SLO specs.

    Single-window (the whole run) evaluation using the same parser,
    burn math, and verdict thresholds as the server's rolling
    :class:`repro.obs.slo.SloEngine` — one SLO language everywhere.
    """
    specs = parse_slos(slos)
    return evaluate_specs(
        specs,
        metrics.histogram_for,
        lambda: (metrics.requests, metrics.error_count),
    )


def build_report(
    *,
    scenario: str,
    seed: int,
    duration: float,
    clients: int,
    mode: str,
    trace_sha256: str,
    query_count: int,
    mutation_count: int,
    wall_s: float,
    metrics: MetricsCollector,
    validation: Optional[dict] = None,
    server: Optional[dict] = None,
    slos: Optional[Sequence[str]] = None,
) -> dict:
    """Assemble the machine-readable SLO report (JSON-ready dict)."""
    ops = {op: metrics.op_latency[op].summary() for op in OPS}
    return {
        "kind": "repro-loadgen SLO report",
        "scenario": scenario,
        "seed": seed,
        "duration_s": duration,
        "clients": clients,
        "mode": mode,
        "trace": {
            "sha256": trace_sha256,
            "queries": query_count,
            "mutations": mutation_count,
        },
        "wall_s": round(wall_s, 3),
        "throughput": {
            "ops_per_s": round(metrics.requests / wall_s, 2) if wall_s else 0.0,
            "peak_1s_window_ops": metrics.peak_window_ops(),
            "rows_per_s": round(metrics.rows / wall_s, 2) if wall_s else 0.0,
        },
        "ops": ops,
        "ttfr_ms": metrics.ttfr.summary(),
        "ttk_ms": metrics.ttk.summary(),
        "rows": metrics.rows,
        "errors": {
            "total": metrics.error_count,
            "by_code": dict(sorted(metrics.errors.items())),
        },
        "validation": validation
        or {"enabled": False, "sampled_pages": 0, "mismatches": 0},
        "server": server or {},
        "slo": (
            evaluate_slos(metrics, slos)
            if slos
            else {"status": "ok", "slos": [], "windows_s": []}
        ),
    }


def _fmt_ms(value) -> str:
    return f"{value:8.2f}" if isinstance(value, (int, float)) else f"{'-':>8}"


def render_text(report: dict) -> str:
    """The human-facing rendering of :func:`build_report`'s dict."""
    lines = [
        "== repro-loadgen SLO report ==",
        (
            f"scenario: {report['scenario']}  seed={report['seed']}  "
            f"duration={report['duration_s']:g}s  "
            f"clients={report['clients']}  mode={report['mode']}"
        ),
        (
            f"trace:    {report['trace']['queries']} queries, "
            f"{report['trace']['mutations']} mutations  "
            f"(sha256 {report['trace']['sha256'][:12]}…)"
        ),
        (
            f"wall:     {report['wall_s']:g}s   "
            f"throughput {report['throughput']['ops_per_s']:g} op/s "
            f"(peak 1s window {report['throughput']['peak_1s_window_ops']} ops), "
            f"{report['throughput']['rows_per_s']:g} rows/s"
        ),
        "",
        f"{'op':<8} {'count':>7} {'p50':>8} {'p95':>8} {'p99':>8} "
        f"{'max':>8}  (ms)",
    ]
    sections = list(report["ops"].items()) + [
        ("ttfr", report["ttfr_ms"]),
        ("ttk", report["ttk_ms"]),
    ]
    for name, summary in sections:
        if not summary.get("count"):
            lines.append(f"{name:<8} {0:>7}")
            continue
        lines.append(
            f"{name:<8} {summary['count']:>7} "
            f"{_fmt_ms(summary.get('p50_ms'))} {_fmt_ms(summary.get('p95_ms'))} "
            f"{_fmt_ms(summary.get('p99_ms'))} {_fmt_ms(summary.get('max_ms'))}"
        )
    errors = report["errors"]
    lines.append("")
    if errors["total"]:
        detail = ", ".join(
            f"{code}={n}" for code, n in errors["by_code"].items()
        )
        lines.append(f"errors:   {errors['total']} ({detail})")
    else:
        lines.append("errors:   none")
    validation = report["validation"]
    if validation.get("enabled"):
        lines.append(
            f"validate: {validation['checked']}/{validation['sampled_pages']} "
            f"sampled pages replayed against serial recompute, "
            f"{validation['mismatches']} mismatches"
            + (
                f" ({validation['unverifiable']} unverifiable)"
                if validation.get("unverifiable")
                else ""
            )
        )
    else:
        lines.append("validate: off")
    server = report.get("server") or {}
    op_latency = server.get("op_latency_ms")
    if op_latency:
        parts = [
            f"{op} n={summary['count']} mean={summary['mean']:.2f} "
            f"max={summary['max']:.2f}"
            for op, summary in sorted(op_latency.items())
        ]
        lines.append("server:   " + " | ".join(parts))
    slo = report.get("slo")
    if slo and slo.get("slos"):
        lines.append("")
        lines.extend(render_slo_report(slo))
    return "\n".join(lines)
