"""Scenario models: template pools, parameter samplers, mutation mixes.

A :class:`Scenario` is everything about a workload *except* the server
it runs against: the dataset spec (a ``repro-serve --gen`` generator
string, so a separately booted server can load the identical data), a
pool of SQL query templates with a popularity shape over them, per
template parameter samplers, a mutation mix, and the arrival processes
for the query lanes and the mutation lane.

:func:`build_trace` materializes a scenario into a :class:`Trace` — the
full per-lane request schedule — **before execution**, as a pure
function of ``(scenario, seed, duration, clients)``.  Two runs with the
same arguments therefore issue the same templates with the same
parameters in the same per-lane order, and the same mutations in the
same global order (all mutations ride a single dedicated lane so their
commit order is the trace order even under concurrency).  The trace
hashes to a stable sha256 the SLO report embeds.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.workload.arrival import (
    ArrivalProcess,
    BurstyOnOff,
    ClosedLoop,
    OpenLoopPoisson,
)
from repro.workload.sampling import ZipfianSampler, make_sampler

#: Stock SLOs every built-in scenario grades itself against unless it
#: (or ``repro-loadgen --slo``) says otherwise.  Deliberately loose —
#: they should hold on any developer machine; tighten per deployment.
DEFAULT_WORKLOAD_SLOS: tuple[str, ...] = (
    "query_p99_ms<=250",
    "ttfr_p99_ms<=250",
    "error_rate<=1%",
)


# ----------------------------------------------------------------------
# Parameter specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IntParam:
    """An integer parameter in ``[lo, hi]``; ``skew > 0`` draws it
    Zipf-skewed toward ``lo`` (hot keys), otherwise uniformly."""

    lo: int
    hi: int
    skew: float = 0.0

    def draw(self, rng: random.Random, sampler_cache: dict) -> int:
        span = self.hi - self.lo + 1
        if self.skew <= 0:
            return self.lo + rng.randrange(span)
        sampler = sampler_cache.get(self)
        if sampler is None:
            sampler = sampler_cache[self] = ZipfianSampler(span, self.skew)
        return self.lo + sampler.draw(rng)


@dataclass(frozen=True)
class FloatParam:
    """A uniform float parameter in ``[lo, hi)``, rounded for stable
    SQL text (the trace is compared textually across runs)."""

    lo: float
    hi: float
    digits: int = 6

    def draw(self, rng: random.Random, sampler_cache: dict) -> float:
        return round(rng.uniform(self.lo, self.hi), self.digits)


ParamSpec = Union[IntParam, FloatParam]


# ----------------------------------------------------------------------
# Templates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SqlTemplate:
    """A named ``str.format`` SQL template with per-placeholder samplers."""

    name: str
    sql: str
    params: tuple[tuple[str, ParamSpec], ...] = ()

    def instantiate(self, rng: random.Random, sampler_cache: dict) -> str:
        values = {
            name: spec.draw(rng, sampler_cache) for name, spec in self.params
        }
        return self.sql.format(**values)


@dataclass(frozen=True)
class QueryTemplate(SqlTemplate):
    """One query statement in the pool.  ``batch`` is the page size the
    driver uses when draining the cursor (prefetch rides the query
    response, further pages are explicit ``fetch`` round trips)."""

    batch: int = 10


@dataclass(frozen=True)
class MutationTemplate(SqlTemplate):
    """One INSERT/DELETE statement in the mutation mix.  ``weight`` is
    the template's share within the mix (relative, not normalized)."""

    weight: float = 1.0


# ----------------------------------------------------------------------
# Requests, traces, scenarios
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Request:
    """One scheduled operation: what to send and (optionally) when.

    ``offset_s`` is seconds after the run's t0; ``None`` means "as soon
    as the previous request on this lane completes" (closed loop).
    """

    kind: str  # "query" | "mutate"
    template: str
    sql: str
    batch: int = 10
    offset_s: Optional[float] = None

    def to_jsonable(self) -> dict:
        out = {"kind": self.kind, "template": self.template, "sql": self.sql}
        if self.kind == "query":
            out["batch"] = self.batch
        if self.offset_s is not None:
            out["offset_s"] = round(self.offset_s, 6)
        return out


@dataclass
class Trace:
    """The fully materialized request schedule for one run."""

    scenario: str
    seed: int
    duration: float
    clients: int
    query_lanes: list[list[Request]]
    mutation_lane: list[Request]

    @property
    def query_count(self) -> int:
        return sum(len(lane) for lane in self.query_lanes)

    @property
    def mutation_count(self) -> int:
        return len(self.mutation_lane)

    def to_jsonable(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "duration": self.duration,
            "clients": self.clients,
            "query_lanes": [
                [request.to_jsonable() for request in lane]
                for lane in self.query_lanes
            ],
            "mutation_lane": [
                request.to_jsonable() for request in self.mutation_lane
            ],
        }

    def sha256(self) -> str:
        """A stable digest of the whole schedule (the determinism
        receipt the SLO report carries)."""
        canonical = json.dumps(
            self.to_jsonable(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Scenario:
    """A named, self-contained workload description."""

    name: str
    description: str
    #: ``repro-serve --gen`` spec of the dataset this scenario queries;
    #: the load generator and a separately booted server both build it,
    #: which is what makes wire-mode validation possible.
    dataset: str
    templates: tuple[QueryTemplate, ...]
    #: Popularity shape over the template pool: uniform | zipf | hotspot.
    popularity: str = "zipf"
    arrival: ArrivalProcess = field(default_factory=ClosedLoop)
    #: Mutations per second on the dedicated mutation lane (0 = read-only).
    mutation_rate: float = 0.0
    mutations: tuple[MutationTemplate, ...] = ()
    #: SLO specs (:mod:`repro.obs.slo` syntax) the run's report grades
    #: itself against; ``repro-loadgen --slo`` overrides them.
    slos: tuple[str, ...] = DEFAULT_WORKLOAD_SLOS

    def summary(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "dataset": self.dataset,
            "templates": [t.name for t in self.templates],
            "popularity": self.popularity,
            "arrival": self.arrival.describe(),
            "mutation_rate": self.mutation_rate,
            "slos": list(self.slos),
        }


def _lane_rng(seed: int, scenario: str, lane: str) -> random.Random:
    # String seeding hashes with sha512 inside random.Random — stable
    # across processes and platforms, unlike hash()-based seeding.
    return random.Random(f"{seed}/{scenario}/{lane}")


def build_trace(
    scenario: Scenario,
    seed: int,
    duration: float,
    clients: int,
) -> Trace:
    """Materialize the full schedule — a pure function of its arguments.

    Each query lane and the mutation lane get independent rng streams
    derived from ``(seed, scenario, lane)``, so lane k's requests do not
    change when another lane's schedule grows.
    """
    if clients < 1:
        raise ValueError("clients must be >= 1")
    if duration <= 0:
        raise ValueError("duration must be positive")
    sampler_cache: dict = {}
    query_lanes: list[list[Request]] = []
    for lane in range(clients):
        rng = _lane_rng(seed, scenario.name, f"q{lane}")
        popularity = make_sampler(scenario.popularity, len(scenario.templates))
        offsets = scenario.arrival.lane_offsets(rng, duration, clients)
        requests = []
        for offset in offsets:
            template = scenario.templates[popularity.draw(rng)]
            requests.append(
                Request(
                    kind="query",
                    template=template.name,
                    sql=template.instantiate(rng, sampler_cache),
                    batch=template.batch,
                    offset_s=offset,
                )
            )
        query_lanes.append(requests)

    mutation_lane: list[Request] = []
    if scenario.mutation_rate > 0 and scenario.mutations:
        rng = _lane_rng(seed, scenario.name, "mut")
        offsets = OpenLoopPoisson(scenario.mutation_rate).lane_offsets(
            rng, duration, 1
        )
        weights = [m.weight for m in scenario.mutations]
        for offset in offsets:
            template = rng.choices(scenario.mutations, weights=weights)[0]
            mutation_lane.append(
                Request(
                    kind="mutate",
                    template=template.name,
                    sql=template.instantiate(rng, sampler_cache),
                    offset_s=offset,
                )
            )

    return Trace(
        scenario=scenario.name,
        seed=seed,
        duration=duration,
        clients=clients,
        query_lanes=query_lanes,
        mutation_lane=mutation_lane,
    )


# ----------------------------------------------------------------------
# Built-in scenarios
# ----------------------------------------------------------------------
#: All built-ins query the same 3-hop path dataset: R1(A1,A2) ⋈ R2(A2,A3)
#: ⋈ R3(A3,A4), 400 weighted tuples each over a 50-value domain.  The
#: spec string is what a separately booted server must pass to
#: ``repro-serve --gen`` for wire-mode validation to line up.
PATH_DATASET = "path:length=3,size=400,domain=50,seed=13"

_K_SMALL = IntParam(5, 25)
_KEY = IntParam(0, 49, skew=1.1)  # hot join keys, Zipf toward 0

_PATH_TEMPLATES = (
    QueryTemplate(
        name="pair-topk",
        sql=(
            "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 "
            "ORDER BY weight LIMIT {k}"
        ),
        params=(("k", IntParam(5, 40)),),
        batch=15,
    ),
    QueryTemplate(
        name="triple-topk",
        sql=(
            "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 "
            "JOIN R3 ON R2.A3 = R3.A3 ORDER BY weight LIMIT {k}"
        ),
        params=(("k", _K_SMALL),),
        batch=10,
    ),
    QueryTemplate(
        name="point-filter",
        sql=(
            "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 "
            "WHERE R1.A1 = {v} ORDER BY weight LIMIT {k}"
        ),
        params=(("v", _KEY), ("k", _K_SMALL)),
        batch=10,
    ),
    QueryTemplate(
        name="heavy-pairs",
        sql=(
            "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 "
            "ORDER BY weight DESC LIMIT {k}"
        ),
        params=(("k", _K_SMALL),),
        batch=10,
    ),
    QueryTemplate(
        name="point-scan",
        sql="SELECT * FROM R2 WHERE R2.A2 = {v} ORDER BY weight LIMIT {k}",
        params=(("v", _KEY), ("k", _K_SMALL)),
        batch=10,
    ),
)

_WEIGHT = FloatParam(0.0, 1.0)

_PATH_MUTATIONS = (
    MutationTemplate(
        name="insert-R1",
        sql="INSERT INTO R1 (A1, A2, weight) VALUES ({a}, {b}, {w})",
        params=(("a", _KEY), ("b", _KEY), ("w", _WEIGHT)),
        weight=2.0,
    ),
    MutationTemplate(
        name="insert-R3",
        sql="INSERT INTO R3 (A3, A4, weight) VALUES ({a}, {b}, {w})",
        params=(("a", _KEY), ("b", _KEY), ("w", _WEIGHT)),
        weight=2.0,
    ),
    MutationTemplate(
        name="delete-R1-pair",
        sql="DELETE FROM R1 WHERE A1 = {a} AND A2 = {b}",
        params=(("a", _KEY), ("b", _KEY)),
        weight=1.0,
    ),
    MutationTemplate(
        name="delete-R3-pair",
        sql="DELETE FROM R3 WHERE A3 = {a} AND A4 = {b}",
        params=(("a", _KEY), ("b", _KEY)),
        weight=1.0,
    ),
)


#: The built-in scenario registry (``repro-loadgen --scenario NAME``).
SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="read-only",
            description="Closed-loop clients hammering the query pool; "
            "no writes — the pure-engine baseline.",
            dataset=PATH_DATASET,
            templates=_PATH_TEMPLATES,
            popularity="zipf",
            arrival=ClosedLoop(ops_per_client_s=20.0),
        ),
        Scenario(
            name="read-mostly",
            description="Open-loop Poisson queries with a trickle of "
            "inserts/deletes — the steady-state serving mix.",
            dataset=PATH_DATASET,
            templates=_PATH_TEMPLATES,
            popularity="zipf",
            arrival=OpenLoopPoisson(rate=60.0),
            mutation_rate=3.0,
            mutations=_PATH_MUTATIONS,
        ),
        Scenario(
            name="churn",
            description="Heavy mutation churn under open-loop queries — "
            "exercises snapshot pinning and cache invalidation.",
            dataset=PATH_DATASET,
            templates=_PATH_TEMPLATES,
            popularity="hotspot",
            arrival=OpenLoopPoisson(rate=40.0),
            mutation_rate=12.0,
            mutations=_PATH_MUTATIONS,
        ),
        Scenario(
            name="bursty",
            description="On/off bursts (150 op/s for 1s, 10 op/s for 2s) "
            "with light mutations — tail-latency under spikes.",
            dataset=PATH_DATASET,
            templates=_PATH_TEMPLATES,
            popularity="zipf",
            arrival=BurstyOnOff(on_rate=150.0, off_rate=10.0, on_s=1.0, off_s=2.0),
            mutation_rate=2.0,
            mutations=_PATH_MUTATIONS,
        ),
    )
}
