"""Seeded popularity samplers: which template, which parameter value.

Three shapes cover the workloads the serving literature cares about —
uniform (no skew), Zipfian (power-law popularity, the web default), and
hotspot (a small hot set absorbing most of the traffic).  All are exact
inverse-CDF samplers over a *finite* domain, driven by a caller-owned
``random.Random``, so a seeded trace is reproducible bit-for-bit across
runs and platforms.

This intentionally differs from :func:`repro.data.generators._zipf_draw`:
that one approximates a continuous power law to build *data*; these
build *traffic*, where the domain is small (templates, key spaces) and
an exact normalized CDF costs nothing.
"""

from __future__ import annotations

import random
from bisect import bisect_left


class Sampler:
    """Draws indices in ``range(n)`` from a fixed distribution."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("sampler domain must have at least one item")
        self.n = n

    def draw(self, rng: random.Random) -> int:
        raise NotImplementedError


class UniformSampler(Sampler):
    """Every index equally likely."""

    def draw(self, rng: random.Random) -> int:
        return rng.randrange(self.n)


class ZipfianSampler(Sampler):
    """Index ``i`` with probability proportional to ``1 / (i+1)**skew``.

    Exact over the finite domain: the normalized CDF is precomputed and
    a uniform draw is inverted by binary search.  Rank 0 is the most
    popular item; callers wanting a different hot item permute indices.
    """

    def __init__(self, n: int, skew: float = 1.1) -> None:
        super().__init__(n)
        if skew <= 0:
            raise ValueError("zipf skew must be positive")
        self.skew = skew
        masses = [(i + 1) ** -skew for i in range(n)]
        total = sum(masses)
        cdf, acc = [], 0.0
        for m in masses:
            acc += m
            cdf.append(acc / total)
        cdf[-1] = 1.0  # close the float gap so bisect never overruns
        self._cdf = cdf

    def draw(self, rng: random.Random) -> int:
        return bisect_left(self._cdf, rng.random())


class HotspotSampler(Sampler):
    """A hot prefix of the domain gets a fixed share of all draws.

    ``hot_fraction`` of the indices (at least one) receive
    ``hot_weight`` of the probability mass, uniformly within each of the
    hot and cold sets — the classic 90/10 access pattern.
    """

    def __init__(
        self, n: int, hot_fraction: float = 0.1, hot_weight: float = 0.9
    ) -> None:
        super().__init__(n)
        if not 0 < hot_fraction <= 1 or not 0 < hot_weight < 1:
            raise ValueError(
                "hot_fraction must be in (0, 1] and hot_weight in (0, 1)"
            )
        self.hot_count = max(1, int(n * hot_fraction))
        self.hot_weight = hot_weight

    def draw(self, rng: random.Random) -> int:
        if self.hot_count >= self.n or rng.random() < self.hot_weight:
            return rng.randrange(self.hot_count)
        return self.hot_count + rng.randrange(self.n - self.hot_count)


#: Popularity-shape name -> factory over a domain size (scenario specs
#: name these; parenthesized variants are built explicitly).
def make_sampler(shape: str, n: int) -> Sampler:
    """Build a sampler from a scenario's popularity-shape name."""
    if shape == "uniform":
        return UniformSampler(n)
    if shape == "zipf":
        return ZipfianSampler(n)
    if shape == "hotspot":
        return HotspotSampler(n)
    raise ValueError(
        f"unknown popularity shape {shape!r}; known: uniform, zipf, hotspot"
    )
