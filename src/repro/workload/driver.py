"""Multi-client drivers: execute a trace, measure it, sample it.

Three drivers share one implementation behind a tiny connection seam:

- **wire** — one :class:`repro.server.Client` socket per lane against a
  real ``repro-serve`` endpoint (measures the full stack: framing, TCP,
  the event loop + executor, the engine);
- **wire-pipelined** — every lane multiplexed onto *one* shared
  :class:`repro.server.client.PipelinedClient` socket (binary framing,
  requests in flight concurrently), which measures the pipelined wire
  path at its best;
- **in-process** — the same protocol dicts handed straight to
  :meth:`repro.server.service.QueryService.handle` (no sockets), which
  isolates engine cost from wire cost: the difference between the wire
  reports and this one *is* the wire.

A client-side read timeout (``client_timeout``) surfaces as a recorded
``client_timeout`` error in the report, not a lane failure: plain wire
lanes redial their poisoned socket and continue the schedule.

Each query lane replays its schedule — ``query`` with an inline
prefetch page, then explicit ``fetch`` round trips until the ranked
stream completes — while the single mutation lane commits the
scenario's INSERT/DELETE stream alongside.  Lanes record latencies into
private collectors (merged afterwards) and sample a fraction of
received pages for the post-run replay validation
(:mod:`repro.workload.validate`).
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.server.client import (
    Client,
    ClientTimeout,
    PipelinedClient,
    ServerError,
)
from repro.workload.metrics import MetricsCollector, build_report
from repro.workload.scenarios import (
    SCENARIOS,
    Scenario,
    Trace,
    build_trace,
)
from repro.workload.validate import (
    SampledPage,
    ValidationResult,
    normalize_page,
    verify_samples,
)

#: Global cap on pages kept for replay validation (memory bound).
MAX_SAMPLED_PAGES = 400


# ----------------------------------------------------------------------
# Connections: one seam, two transports
# ----------------------------------------------------------------------
class InProcessConnection:
    """Protocol dicts straight into ``QueryService.handle`` — no wire."""

    def __init__(self, service) -> None:
        self.service = service
        self._ids = itertools.count(1)

    def call(self, op: str, **fields) -> dict:
        request = {"id": next(self._ids), "op": op}
        request.update({k: v for k, v in fields.items() if v is not None})
        response = self.service.handle(request)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServerError(
                error.get("code", "internal"),
                error.get("message", "unspecified error"),
            )
        return response

    def close(self) -> None:
        pass


class WireConnection:
    """One TCP socket per lane (real concurrency needs real sockets)."""

    def __init__(
        self, host: str, port: int, timeout: Optional[float] = None
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.client = Client(host=host, port=port, timeout=timeout)

    def call(self, op: str, **fields) -> dict:
        try:
            return self.client.call(
                op, **{k: v for k, v in fields.items() if v is not None}
            )
        except ClientTimeout:
            # The timed-out client poisoned its socket (a late response
            # would desync the pairing); redial so the lane's remaining
            # schedule proceeds.  The timeout itself propagates as a
            # ServerError, which the lane records as an error and
            # survives.
            try:
                self.client.close()
            except OSError:
                pass
            self.client = Client(
                host=self.host, port=self.port, timeout=self.timeout
            )
            raise

    def close(self) -> None:
        self.client.close()


class PipelinedWireConnection:
    """One lane's view of a *shared* :class:`PipelinedClient` socket.

    Non-owning: lanes come and go, the underlying pipelined connection
    belongs to the run.  All lanes' requests interleave in flight on the
    one socket — the pipelining the transport was built for.
    """

    def __init__(self, client: PipelinedClient) -> None:
        self.client = client

    def call(self, op: str, **fields) -> dict:
        return self.client.call(
            op, **{k: v for k, v in fields.items() if v is not None}
        )

    def close(self) -> None:
        pass  # the shared client outlives the lane


# ----------------------------------------------------------------------
# Lane execution
# ----------------------------------------------------------------------
def _pace(t0: float, offset_s: Optional[float]) -> None:
    if offset_s is not None:
        delay = t0 + offset_s - time.perf_counter()
        if delay > 0:
            time.sleep(delay)


@dataclass
class _LaneState:
    """Everything one lane thread writes (merged after join)."""

    metrics: MetricsCollector = field(default_factory=MetricsCollector)
    samples: list = field(default_factory=list)
    mutation_log: list = field(default_factory=list)
    fatal: Optional[BaseException] = None


def _run_query_lane(
    connection,
    requests,
    t0: float,
    sample_fraction: float,
    sample_rng: random.Random,
    sample_budget: int,
    state: _LaneState,
) -> None:
    metrics = state.metrics
    for request in requests:
        _pace(t0, request.offset_s)
        issued = time.perf_counter()
        try:
            response = connection.call(
                "query", sql=request.sql, fetch=request.batch
            )
        except ServerError as exc:
            now = time.perf_counter()
            metrics.record_op("query", (now - issued) * 1000.0, now - t0)
            metrics.record_error(exc.code)
            continue
        now = time.perf_counter()
        metrics.record_op("query", (now - issued) * 1000.0, now - t0)
        version = response.get("version")
        cursor = response.get("cursor")
        rows = response.get("rows") or []
        done = bool(response.get("done"))
        offset = 0
        saw_first = False
        failed = False
        while True:
            if rows:
                if not saw_first:
                    saw_first = True
                    metrics.record_ttfr(
                        (time.perf_counter() - issued) * 1000.0
                    )
                metrics.record_rows(len(rows))
                if (
                    sample_fraction > 0
                    and version is not None
                    and len(state.samples) < sample_budget
                    and sample_rng.random() < sample_fraction
                ):
                    state.samples.append(
                        SampledPage(
                            sql=request.sql,
                            version=version,
                            offset=offset,
                            rows=normalize_page(rows),
                        )
                    )
                offset += len(rows)
            if done or cursor is None:
                metrics.record_ttk((time.perf_counter() - issued) * 1000.0)
                break
            fetch_at = time.perf_counter()
            try:
                response = connection.call(
                    "fetch", cursor=cursor, n=request.batch
                )
            except ServerError as exc:
                # Failed round trips still count as ops (same rule as
                # query/mutate): the server spent the time either way.
                now = time.perf_counter()
                metrics.record_op("fetch", (now - fetch_at) * 1000.0, now - t0)
                metrics.record_error(exc.code)
                failed = True
                break
            now = time.perf_counter()
            metrics.record_op("fetch", (now - fetch_at) * 1000.0, now - t0)
            rows = response.get("rows") or []
            done = bool(response.get("done"))
        if failed and cursor is not None:
            try:  # free the server slot; best-effort
                connection.call("close", cursor=cursor)
            except ServerError:
                pass


def _run_mutation_lane(
    connection, requests, t0: float, state: _LaneState
) -> None:
    metrics = state.metrics
    for request in requests:
        _pace(t0, request.offset_s)
        issued = time.perf_counter()
        try:
            response = connection.call("mutate", sql=request.sql)
        except ServerError as exc:
            now = time.perf_counter()
            metrics.record_op("mutate", (now - issued) * 1000.0, now - t0)
            metrics.record_error(exc.code)
            continue
        now = time.perf_counter()
        metrics.record_op("mutate", (now - issued) * 1000.0, now - t0)
        state.mutation_log.append((response["version"], request.sql))


def _lane_thread(target, connection_factory, args, state: _LaneState):
    def run() -> None:
        connection = None
        try:
            connection = connection_factory()
            target(connection, *args, state)
        except BaseException as exc:  # surfaced after join, not swallowed
            state.fatal = exc
        finally:
            if connection is not None:
                connection.close()

    return threading.Thread(target=run, daemon=True)


# ----------------------------------------------------------------------
# The run orchestrator
# ----------------------------------------------------------------------
@dataclass
class LoadResult:
    """Everything a run produced: the report plus its raw ingredients."""

    report: dict
    trace: Trace
    metrics: MetricsCollector
    validation: Optional[ValidationResult]


def run_trace(
    trace: Trace,
    connection_factory: Callable[[], object],
    *,
    mode: str,
    sample: float = 0.1,
    initial_db: Optional[Callable[[], object]] = None,
    slos: Optional[Sequence[str]] = None,
) -> LoadResult:
    """Execute a materialized trace and assemble the SLO report.

    ``connection_factory`` is called once per lane (plus once for the
    run's stats probes).  ``sample`` is the per-page validation sampling
    probability; validation also needs ``initial_db`` (a zero-argument
    factory rebuilding the dataset at version 1) and a server whose
    history starts at version 1 with no writers besides this driver.
    """
    probe = connection_factory()
    try:
        validation_note = None
        if sample > 0:
            if initial_db is None:
                sample, validation_note = 0.0, "no initial_db factory"
            else:
                base = probe.call("stats")["database"]["version"]
                if base != 1:
                    sample, validation_note = 0.0, (
                        f"server already at version {base}; replay needs a "
                        "pristine history"
                    )

        states: list[_LaneState] = []
        threads: list[threading.Thread] = []
        lanes = max(1, len(trace.query_lanes))
        budget = max(1, MAX_SAMPLED_PAGES // lanes)
        t0 = time.perf_counter()
        for lane, requests in enumerate(trace.query_lanes):
            state = _LaneState()
            states.append(state)
            threads.append(
                _lane_thread(
                    _run_query_lane,
                    connection_factory,
                    (
                        requests,
                        t0,
                        sample,
                        random.Random(f"{trace.seed}/sample/{lane}"),
                        budget,
                    ),
                    state,
                )
            )
        if trace.mutation_lane:
            state = _LaneState()
            states.append(state)
            threads.append(
                _lane_thread(
                    _run_mutation_lane,
                    connection_factory,
                    (trace.mutation_lane, t0),
                    state,
                )
            )
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_s = time.perf_counter() - t0
        for state in states:
            if state.fatal is not None:
                raise state.fatal

        metrics = MetricsCollector()
        samples: list[SampledPage] = []
        mutation_log: list[tuple[int, str]] = []
        for state in states:
            metrics.merge(state.metrics)
            samples.extend(state.samples)
            mutation_log.extend(state.mutation_log)

        validation: Optional[ValidationResult] = None
        if sample > 0 and initial_db is not None:
            validation = verify_samples(initial_db, mutation_log, samples)
            validation_json = validation.to_jsonable()
        else:
            validation_json = {
                "enabled": False,
                "sampled_pages": 0,
                "mismatches": 0,
            }
            if validation_note:
                validation_json["disabled_reason"] = validation_note

        stats = probe.call("stats")
        server = {
            "op_latency_ms": stats.get("op_latency_ms", {}),
            "queries": stats.get("queries"),
            "fetches": stats.get("fetches"),
            "mutations": stats.get("mutations"),
            "rows_served": stats.get("rows_served"),
            "plan_cache": stats.get("plan_cache"),
            "database_version": (stats.get("database") or {}).get("version"),
        }
    finally:
        probe.close()

    report = build_report(
        scenario=trace.scenario,
        seed=trace.seed,
        duration=trace.duration,
        clients=trace.clients,
        mode=mode,
        trace_sha256=trace.sha256(),
        query_count=trace.query_count,
        mutation_count=trace.mutation_count,
        wall_s=wall_s,
        metrics=metrics,
        validation=validation_json,
        server=server,
        slos=slos,
    )
    return LoadResult(
        report=report, trace=trace, metrics=metrics, validation=validation
    )


def run_scenario(
    scenario: "Scenario | str",
    *,
    seed: int = 7,
    duration: float = 5.0,
    clients: int = 4,
    mode: str = "inprocess",
    connect: Optional[tuple[str, int]] = None,
    sample: float = 0.1,
    service_options: Optional[dict] = None,
    slos: Optional[Sequence[str]] = None,
    client_timeout: Optional[float] = None,
) -> LoadResult:
    """Build the trace, stand up (or dial) a server, run, report.

    ``mode="inprocess"`` drives a private :class:`QueryService` directly;
    ``mode="wire"`` boots an ephemeral in-process TCP server — or, with
    ``connect=(host, port)``, dials an existing ``repro-serve`` that
    **must** have been started with the scenario's dataset spec
    (``Scenario.dataset``) for validation to line up.
    ``mode="wire-pipelined"`` multiplexes every lane onto one shared
    binary-framed pipelined connection.  ``client_timeout`` bounds each
    wire round trip client-side; expiries land in the report as
    ``client_timeout`` errors (lanes survive them).
    """
    if isinstance(scenario, str):
        try:
            scenario = SCENARIOS[scenario]
        except KeyError:
            known = ", ".join(sorted(SCENARIOS))
            raise ValueError(
                f"unknown scenario {scenario!r}; known: {known}"
            ) from None
    # Deferred import: repro.server.cli pulls argparse helpers we only
    # need for the generator-spec parser.
    from repro.server.cli import parse_generator_spec

    def initial_db():
        return parse_generator_spec(scenario.dataset)

    if slos is None:
        slos = scenario.slos

    trace = build_trace(scenario, seed=seed, duration=duration, clients=clients)

    if mode == "inprocess":
        from repro.dynamic import VersionedDatabase
        from repro.server.service import QueryService

        service = QueryService(
            VersionedDatabase(initial_db(), copy=False),
            **(service_options or {}),
        )
        return run_trace(
            trace,
            lambda: InProcessConnection(service),
            mode=mode,
            sample=sample,
            initial_db=initial_db,
            slos=slos,
        )
    if mode not in ("wire", "wire-pipelined"):
        raise ValueError(
            f"unknown mode {mode!r}; known: inprocess, wire, wire-pipelined"
        )

    server = None
    if connect is not None:
        host, port = connect
    else:
        from repro.dynamic import VersionedDatabase
        from repro.server.tcp import serve_background

        server, port = serve_background(
            VersionedDatabase(initial_db(), copy=False),
            **(service_options or {}),
        )
        host = "127.0.0.1"

    shared: Optional[PipelinedClient] = None
    try:
        if mode == "wire-pipelined":
            shared = PipelinedClient(
                host=host, port=port, timeout=client_timeout
            )
            factory = lambda: PipelinedWireConnection(shared)  # noqa: E731
        else:
            factory = lambda: WireConnection(  # noqa: E731
                host, port, timeout=client_timeout
            )
        return run_trace(
            trace,
            factory,
            mode=mode,
            sample=sample,
            initial_db=initial_db,
            slos=slos,
        )
    finally:
        if shared is not None:
            shared.close()
        if server is not None:
            server.shutdown()
            server.server_close()
