"""The ``repro-loadgen`` console script: seeded load tests with SLO reports.

Examples::

    repro-loadgen --list
    repro-loadgen --scenario read-mostly --seed 7 --duration 5
    repro-loadgen --scenario bursty --clients 8 --mode wire
    repro-loadgen --scenario churn --mode inprocess --sample 0.25

    # Against a separately booted server (must serve the scenario's
    # dataset spec for validation to line up):
    repro-serve --gen "path:length=3,size=400,domain=50,seed=13" --port 0
    repro-loadgen --scenario read-mostly --connect 127.0.0.1:PORT

The text report prints to stdout; the machine-readable report lands in
``BENCH_workload.json`` (``--json PATH`` to move it, ``--json ''`` to
skip).  The same ``--scenario --seed --duration --clients`` always
replays the identical request trace — the report's ``trace.sha256`` is
the receipt.  Exit status: 0 on a clean run, 2 when replay validation
found mismatches (a correctness bug, not a performance problem).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.workload.driver import run_scenario
from repro.workload.metrics import render_text
from repro.workload.scenarios import SCENARIOS, build_trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-loadgen",
        description="Generate seeded, deterministic query/mutation traffic "
        "against the any-k stack and report latency SLOs "
        "(p50/p95/p99, time-to-first-result, throughput) with "
        "sampled replay validation.",
    )
    parser.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        help="built-in scenario to run (see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list built-in scenarios and exit"
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="trace seed (default 7)"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=5.0,
        help="schedule horizon in seconds (default 5); the full schedule "
        "always executes, even if the server falls behind",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=4,
        help="concurrent query lanes (default 4); mutations ride one "
        "extra dedicated lane",
    )
    parser.add_argument(
        "--mode",
        choices=("wire", "wire-pipelined", "inprocess"),
        default="wire",
        help="wire: one socket per lane against an ephemeral (or "
        "--connect'ed) server; wire-pipelined: every lane multiplexed "
        "onto one shared binary-framed pipelined socket; inprocess: "
        "call QueryService directly to isolate engine cost from wire "
        "cost (default wire)",
    )
    parser.add_argument(
        "--client-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="client-side bound on each wire round trip; expiries are "
        "recorded as client_timeout errors and lanes keep going "
        "(default: wait indefinitely)",
    )
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="drive an existing repro-serve instead of booting one "
        "(wire mode only); it must serve the scenario's dataset spec",
    )
    parser.add_argument(
        "--sample",
        type=float,
        default=0.1,
        help="fraction of result pages replayed against a serial "
        "recompute on the cursor's pinned snapshot (default 0.1; "
        "0 disables validation)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="partition-parallelism budget for a self-booted server "
        "(ignored with --connect)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default="BENCH_workload.json",
        help="where to write the machine-readable report "
        "(default BENCH_workload.json; '' skips)",
    )
    parser.add_argument(
        "--slo",
        action="append",
        metavar="SPEC",
        default=None,
        help="grade the run against this SLO spec instead of the "
        "scenario's defaults, e.g. 'query_p99_ms<=25', 'ttfr_ms<=5', "
        "'error_rate<=0.1%%' (repeatable; see repro.obs.slo)",
    )
    parser.add_argument(
        "--trace-only",
        action="store_true",
        help="print the materialized request trace as JSON and exit "
        "without contacting any server (determinism checks)",
    )
    return parser


def _print_scenarios() -> None:
    width = max(len(name) for name in SCENARIOS)
    for name in sorted(SCENARIOS):
        scenario = SCENARIOS[name]
        print(f"{name:<{width}}  {scenario.description}")
        print(
            f"{'':<{width}}  arrival: {scenario.arrival.describe()}; "
            f"popularity: {scenario.popularity}; "
            f"mutations: {scenario.mutation_rate:g}/s; "
            f"dataset: {scenario.dataset}"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        _print_scenarios()
        return 0
    if not args.scenario:
        print(
            "repro-loadgen: --scenario is required (try --list)",
            file=sys.stderr,
        )
        return 64
    if args.connect and args.mode == "inprocess":
        print(
            "repro-loadgen: --connect needs a wire mode", file=sys.stderr
        )
        return 64

    scenario = SCENARIOS[args.scenario]
    if args.trace_only:
        trace = build_trace(
            scenario,
            seed=args.seed,
            duration=args.duration,
            clients=args.clients,
        )
        payload = trace.to_jsonable()
        payload["sha256"] = trace.sha256()
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0

    connect = None
    if args.connect:
        host, _, port = args.connect.rpartition(":")
        try:
            connect = (host or "127.0.0.1", int(port))
        except ValueError:
            print(
                f"repro-loadgen: bad --connect {args.connect!r} "
                "(expected HOST:PORT)",
                file=sys.stderr,
            )
            return 64

    if args.slo is not None:
        from repro.obs.slo import SloError, parse_slos

        try:
            parse_slos(args.slo)
        except SloError as exc:
            print(f"repro-loadgen: bad --slo spec: {exc}", file=sys.stderr)
            return 64

    result = run_scenario(
        scenario,
        seed=args.seed,
        duration=args.duration,
        clients=args.clients,
        mode=args.mode,
        connect=connect,
        sample=args.sample,
        service_options=None if args.connect else {"workers": args.workers},
        slos=args.slo,
        client_timeout=args.client_timeout,
    )
    print(render_text(result.report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result.report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nJSON report written to {args.json}")
    if result.validation is not None and result.validation.mismatches:
        print(
            f"repro-loadgen: {len(result.validation.mismatches)} replay "
            "mismatches — the served pages disagree with a serial "
            "recompute on the pinned snapshot",
            file=sys.stderr,
        )
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
