"""Compatibility shim: the histogram moved to :mod:`repro.util.histogram`.

The mergeable fixed-bucket histogram started life as the load
generator's measurement primitive; once the server's per-op latency
stats and the engine-side anytime-delay profiler (:mod:`repro.obs`)
needed the same model, it was promoted to :mod:`repro.util`.  This
module keeps the old import path working, with a
:class:`DeprecationWarning` nudge toward the new one.
"""

from __future__ import annotations

import warnings

from repro.util.histogram import (
    DEFAULT_BOUNDS,
    Histogram,
    geometric_bounds,
)

warnings.warn(
    "repro.workload.histogram moved to repro.util.histogram; "
    "update the import (this shim will be removed in a future release)",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["DEFAULT_BOUNDS", "Histogram", "geometric_bounds"]
