"""Session/cursor manager: paused enumerations that survive requests.

A cursor is one query's :class:`~repro.anyk.api.PausableStream` plus the
metadata a later ``fetch`` needs (output columns, the chosen engine, the
per-session operation counters).  The manager enforces an admission limit
— every open cursor pins T-DP state and generator frames, so a server
must bound them — and evicts *idle* cursors first when the limit is hit,
rejecting only when every slot is genuinely live.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Callable, Optional

from typing import TYPE_CHECKING

from repro.anyk.api import PausableStream
from repro.util.counters import Counters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.obs.delay import DelayProfile
    from repro.obs.memory import MemoryProfile


class CursorLimitError(Exception):
    """Admission control: the server is at its open-cursor limit."""


class MemoryPressureError(Exception):
    """Admission control: the server is over its memory watermark.

    Raised *before* planning/stream construction when the accounted live
    bytes of all open cursors exceed ``--max-mem-mb`` and evicting idle
    cursors could not free enough — the clean refusal that replaces an
    eventual OOM.  Maps to the ``mem_pressure`` wire error code, never
    ``internal``.
    """


class UnknownCursorError(Exception):
    """The cursor id is not open (never existed, closed, or evicted)."""


class Cursor:
    """One open enumeration session."""

    def __init__(
        self,
        cursor_id: str,
        sql: str,
        engine: str,
        columns: tuple[str, ...],
        stream: PausableStream,
        counters: Counters,
        profile: Optional["DelayProfile"] = None,
        memory: Optional["MemoryProfile"] = None,
        template: Optional[str] = None,
        estimate: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> None:
        self.id = cursor_id
        self.sql = sql
        self.engine = engine
        self.columns = columns
        self.stream = stream
        self.counters = counters
        #: The session's anytime-delay profile (wrapped around the engine
        #: stream by the service); folded into per-engine aggregates when
        #: the cursor retires.
        self.profile = profile
        #: The session's space profile — live/peak bytes of the engine
        #: structures this cursor pins; read by the admission watermark
        #: and folded like ``profile`` at retirement.
        self.memory = memory
        #: Planner-feedback metadata: the statement's template digest and
        #: the planner's output-cardinality estimate (AGM bound), matched
        #: against actual rows at retirement when the stream ran dry.
        self.template = template
        self.estimate = estimate
        self.limit = limit
        self.created = time.monotonic()
        self.last_used = self.created

    def fetch(
        self, n: int, deadline: Optional[float] = None
    ) -> tuple[list, bool]:
        """Resume the paused stream for up to ``n`` more results."""
        self.last_used = time.monotonic()
        return self.stream.take(n, deadline=deadline)

    @property
    def emitted(self) -> int:
        return self.stream.emitted

    def describe(self) -> dict:
        """Cursor metadata for the ``stats`` endpoint."""
        now = time.monotonic()
        out = {
            "cursor": self.id,
            "sql": self.sql,
            "engine": self.engine,
            "emitted": self.emitted,
            "age_s": round(now - self.created, 3),
            "idle_s": round(now - self.last_used, 3),
        }
        if self.memory is not None:
            out["live_bytes"] = self.memory.live_bytes
            out["peak_bytes"] = self.memory.peak_bytes
        return out


class CursorManager:
    """Thread-safe registry of open cursors with admission control."""

    def __init__(
        self,
        limit: int = 64,
        idle_evict_s: Optional[float] = 600.0,
        on_evict: Optional[Callable[[Cursor], None]] = None,
    ) -> None:
        if limit < 1:
            raise ValueError("the cursor limit must be at least 1")
        self.limit = limit
        #: Cursors idle longer than this are eviction candidates when the
        #: limit is hit (None disables idle eviction entirely).
        self.idle_evict_s = idle_evict_s
        #: Called (outside the manager lock) for each cursor removed by
        #: idle eviction, so the owner can account for the session's work
        #: exactly like an explicit close would.
        self.on_evict = on_evict
        self.opened = 0
        self.closed = 0
        self.evicted = 0
        self.rejected = 0
        self._cursors: dict[str, Cursor] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    def ensure_capacity(self) -> None:
        """Cheap admission pre-check: raise :class:`CursorLimitError` now
        if an :meth:`open` would certainly be rejected.

        Lets the service refuse *before* paying for planning and stream
        construction under overload (the regime the limit exists for).
        TOCTOU races are fine — :meth:`open` re-checks authoritatively.
        """
        with self._lock:
            if len(self._cursors) < self.limit:
                return
            if self.idle_evict_s is not None:
                now = time.monotonic()
                if any(
                    now - c.last_used >= self.idle_evict_s
                    for c in self._cursors.values()
                ):
                    return  # open() will make room by evicting
            self.rejected += 1
        raise CursorLimitError(
            f"open-cursor limit reached ({self.limit}); close or drain a "
            "cursor first"
        )

    def open(
        self,
        sql: str,
        engine: str,
        columns: tuple[str, ...],
        stream: PausableStream,
        counters: Counters,
        profile: Optional["DelayProfile"] = None,
        memory: Optional["MemoryProfile"] = None,
        template: Optional[str] = None,
        estimate: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> Cursor:
        """Register a new cursor; raises :class:`CursorLimitError` when
        full and nothing is idle enough to evict."""
        victims: list[Cursor] = []
        try:
            with self._lock:
                if len(self._cursors) >= self.limit:
                    victims = self._collect_idle_victims_locked()
                if len(self._cursors) >= self.limit:
                    self.rejected += 1
                    raise CursorLimitError(
                        f"open-cursor limit reached ({self.limit}); close "
                        "or drain a cursor first"
                    )
                cursor_id = f"c{next(self._ids)}"
                cursor = Cursor(
                    cursor_id,
                    sql,
                    engine,
                    columns,
                    stream,
                    counters,
                    profile,
                    memory=memory,
                    template=template,
                    estimate=estimate,
                    limit=limit,
                )
                self._cursors[cursor_id] = cursor
                self.opened += 1
        finally:
            # Dispose of evicted streams *outside* the manager lock: a
            # close() blocking on a victim's in-flight take() must not
            # stall every other cursor operation on the server.
            for victim in victims:
                victim.stream.close()
                if self.on_evict is not None:
                    self.on_evict(victim)
        return cursor

    def _collect_idle_victims_locked(self) -> list[Cursor]:
        """Unregister (but do not dispose) enough idle cursors to admit
        one more; returns them for cleanup outside the lock."""
        if self.idle_evict_s is None:
            return []
        now = time.monotonic()
        stale = [
            c
            for c in self._cursors.values()
            if now - c.last_used >= self.idle_evict_s
        ]
        # Oldest-idle first, and only as many as needed to admit one more.
        stale.sort(key=lambda c: c.last_used)
        victims = stale[: len(self._cursors) - self.limit + 1]
        for cursor in victims:
            del self._cursors[cursor.id]
            self.evicted += 1
        return victims

    def live_mem_bytes(self) -> int:
        """Accounted live bytes across every open cursor's engine
        structures (0 for cursors opened without a memory profile)."""
        with self._lock:
            return sum(
                c.memory.live_bytes
                for c in self._cursors.values()
                if c.memory is not None
            )

    def evict_for_memory(
        self, watermark_bytes: int, min_idle_s: float = 1.0
    ) -> int:
        """Evict oldest-idle cursors until accounted live bytes drop
        below ``watermark_bytes``; returns how many were evicted.

        Cursors idle for less than ``min_idle_s`` are protected: memory
        pressure sheds abandoned sessions, it must not cancel a cursor a
        client is actively paging through.  Disposal happens outside the
        manager lock, exactly like limit-driven idle eviction.
        """
        victims: list[Cursor] = []
        try:
            with self._lock:
                live = sum(
                    c.memory.live_bytes
                    for c in self._cursors.values()
                    if c.memory is not None
                )
                if live < watermark_bytes:
                    return 0
                now = time.monotonic()
                idle = [
                    c
                    for c in self._cursors.values()
                    if now - c.last_used >= min_idle_s
                ]
                idle.sort(key=lambda c: c.last_used)
                for cursor in idle:
                    if live < watermark_bytes:
                        break
                    del self._cursors[cursor.id]
                    self.evicted += 1
                    victims.append(cursor)
                    if cursor.memory is not None:
                        live -= cursor.memory.live_bytes
        finally:
            for victim in victims:
                victim.stream.close()
                if self.on_evict is not None:
                    self.on_evict(victim)
        return len(victims)

    def get(self, cursor_id: str) -> Cursor:
        with self._lock:
            cursor = self._cursors.get(cursor_id)
        if cursor is None:
            raise UnknownCursorError(
                f"no open cursor {cursor_id!r} (closed, evicted, or never "
                "opened)"
            )
        return cursor

    def close(self, cursor_id: str) -> Cursor:
        """Remove and return the cursor; its stream is disposed."""
        with self._lock:
            cursor = self._cursors.pop(cursor_id, None)
            if cursor is not None:
                self.closed += 1
        if cursor is None:
            raise UnknownCursorError(f"no open cursor {cursor_id!r}")
        cursor.stream.close()
        return cursor

    def close_all(self) -> list[Cursor]:
        with self._lock:
            cursors = list(self._cursors.values())
            self._cursors.clear()
            self.closed += len(cursors)
        for cursor in cursors:
            cursor.stream.close()
        return cursors

    def __len__(self) -> int:
        return len(self._cursors)

    def stats(self) -> dict:
        with self._lock:
            return {
                "open": len(self._cursors),
                "limit": self.limit,
                "opened": self.opened,
                "closed": self.closed,
                "evicted": self.evicted,
                "rejected": self.rejected,
                "cursors": [c.describe() for c in self._cursors.values()],
            }
