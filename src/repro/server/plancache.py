"""LRU plan cache: normalized SQL + catalog fingerprint -> routed plan.

Planning a statement costs a parse, semantic analysis against the
catalog, filter materialization, and the router's shape analysis (GYO
reduction, fractional-cover LP, possibly a tree decomposition).  A serving
workload replays the same handful of statements endlessly, so the whole
pipeline is memoized here — the same discipline as the fractional-cover
LP memo in :mod:`repro.query.agm`, one level up.

Correctness rests on two facts:

- the key includes :func:`repro.engine.catalog.database_fingerprint`, so
  a reshaped catalog (relations added/dropped/resized) misses the cache;
- relation contents are immutable after registration (the library-wide
  contract), so a cached plan's materialized working instance still
  describes the data whenever the fingerprint matches.

SQL normalization re-renders the parsed AST, so formatting differences
(whitespace, keyword case, ``!=`` vs ``<>``) land on the same entry while
semantically different statements never collide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.sql.parser import parse
from repro.util.lru import LruCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.planner import Plan
    from repro.sql.analyzer import CompiledQuery
    from repro.sql.nodes import SelectStatement


def normalize_sql(sql: str) -> tuple[str, "SelectStatement"]:
    """Canonical text for ``sql`` (plus its parsed statement).

    Parsing is the cheap front of the pipeline; re-rendering the AST
    gives a canonical form for free.  The statement is returned too so a
    cache miss can continue into semantic analysis without re-parsing.
    """
    statement = parse(sql)
    return str(statement), statement


@dataclass
class CachedPlan:
    """One plan-cache entry: everything execution needs, analysis-free."""

    compiled: "CompiledQuery"
    plan: "Plan"
    hits: int = field(default=0)


class PlanCache:
    """Bounded, thread-safe LRU over :class:`CachedPlan` entries
    (a thin veneer over :class:`repro.util.lru.LruCache`)."""

    def __init__(self, maxsize: int = 128) -> None:
        self._lru = LruCache(maxsize)

    @staticmethod
    def key(
        normalized_sql: str,
        engine: Optional[str],
        fingerprint: tuple,
        workers: int = 1,
    ) -> tuple:
        """The full cache key (engine overrides and the parallelism
        budget both route differently)."""
        return (normalized_sql, engine, fingerprint, workers)

    def lookup(self, key: tuple) -> Optional[CachedPlan]:
        entry = self._lru.get(key)
        if entry is not None:
            entry.hits += 1
        return entry

    def store(self, key: tuple, entry: CachedPlan) -> None:
        self._lru.put(key, entry)

    def __len__(self) -> int:
        return len(self._lru)

    def clear(self) -> None:
        self._lru.clear()

    def info(self) -> dict:
        """Hit/miss counters for the ``stats`` endpoint."""
        return self._lru.info()
