"""LRU plan cache: parameterized statement templates -> routed plans.

Planning a statement costs a parse, semantic analysis against the
catalog, filter materialization, and the router's shape analysis (GYO
reduction, fractional-cover LP, possibly a tree decomposition).  A serving
workload replays the same handful of statement *shapes* endlessly while
varying the constants — ``v = 17 LIMIT 10`` this request, ``v = 3 LIMIT
25`` the next — so caching on the literal SQL text buys almost nothing.

This cache therefore keys on the **parameterized template**: during
normalization every literal on the constant side of a comparison and the
LIMIT count are lifted into a bound-parameter vector (explicit ``?``
placeholders land in the same vector), and the re-rendered AST — with
``?`` in every lifted position — becomes the cache key.  All
instantiations of one template share one :class:`CachedPlan`; a hit costs
one parse plus a cheap re-bind (dataclass copies substituting the bound
values), never a re-analysis or re-route.

Staleness is handled by **validate-on-hit** instead of fingerprint-keyed
misses: each entry records the catalog fingerprint it was costed on, and
the service compares it against the request snapshot's fingerprint on
every hit.

- identical fingerprint and identical bound values: the entry's plan is
  served as-is, materialized working instance included (the fast path);
- identical or near-identical fingerprint (relation sizes within the
  recost threshold) with different values: the plan's *routing* is
  reused but the filtered working instance is rebuilt from the request
  snapshot at execution time — correct for any binding and any data
  generation, because :func:`repro.engine.executor.execute` falls back
  to :func:`~repro.engine.executor.filtered_database` when the plan
  carries no working instance;
- a large size drift or an empty/non-empty flip: the plan is re-costed
  from fresh statistics (routing may genuinely change, e.g. rank-join
  over an emptied input should flip to batch), which counts as a miss.

Any engine disagreement a reused routing could introduce is bounded by
the library-wide determinism contract: every engine emits the identical
byte-for-byte ranked stream, so a suboptimally-routed binding is slower,
never wrong (the differential tests in ``tests/test_params.py`` pin
this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Optional, Sequence, TYPE_CHECKING

from repro.sql.errors import SqlError
from repro.sql.nodes import (
    Comparison,
    Literal,
    Parameter,
    SelectStatement,
)
from repro.sql.parser import parse
from repro.util.lru import LruCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.planner import Plan
    from repro.sql.analyzer import CompiledQuery

#: Relative per-relation size drift beyond which a cached plan is
#: re-costed instead of re-bound (and an empty<->non-empty flip always
#: re-costs: routing rules special-case empty inputs).
RECOST_DRIFT = 0.2

#: One extracted parameter slot: ``("lit", value)`` for a literal lifted
#: out of the statement, ``("arg", i)`` for the i-th explicit ``?``.
Slot = tuple[str, Any]


@dataclass(frozen=True)
class ParameterizedQuery:
    """One statement, split into its template and its constants.

    ``template`` (the re-rendered AST with ``?`` in every parameter
    position) is the cache key material; ``slots`` records where each
    parameter's value comes from, in appearance order.
    """

    sql: str
    template: str
    statement: SelectStatement  # the template AST (Parameter nodes)
    slots: tuple[Slot, ...]

    @property
    def placeholders(self) -> int:
        """How many explicit ``?`` markers the statement carries."""
        return sum(1 for kind, _ in self.slots if kind == "arg")

    def resolve(self, params: Optional[Sequence[Any]]) -> tuple:
        """The concrete value vector for this request.

        Lifted literals supply their own values; explicit ``?`` markers
        consume ``params`` positionally.  Arity mismatches and non-scalar
        values raise :class:`SqlError` (the server maps it to a clean
        ``sql_error``).
        """
        supplied = tuple(params) if params is not None else ()
        wanted = self.placeholders
        if len(supplied) != wanted:
            raise SqlError(
                f"statement has {wanted} bind parameter(s) (?) but "
                f"{len(supplied)} value(s) were supplied"
            )
        values = []
        for kind, payload in self.slots:
            if kind == "lit":
                values.append(payload)
                continue
            value = supplied[payload]
            if isinstance(value, bool) or not isinstance(
                value, (int, float, str)
            ):
                raise SqlError(
                    f"bind parameter {payload + 1} must be a number or "
                    f"string, got {type(value).__name__}"
                )
            values.append(value)
        return tuple(values)


def parameterize(
    statement: SelectStatement,
) -> tuple[SelectStatement, tuple[Slot, ...]]:
    """Lift constants out of ``statement`` into a parameter vector.

    Every literal compared against a column and the integer LIMIT become
    :class:`Parameter` nodes numbered in appearance order; explicit
    ``?`` placeholders are renumbered into the same sequence while
    remembering which request-supplied value they consume.  Join
    predicates (column = column) and pathological literal-literal
    comparisons are left untouched (the analyzer rejects the latter with
    a positioned diagnostic).
    """
    slots: list[Slot] = []

    def lift(operand: Any) -> Any:
        if isinstance(operand, Literal):
            slots.append(("lit", operand.value))
            return Parameter(len(slots) - 1, operand.pos)
        if isinstance(operand, Parameter):
            slots.append(("arg", operand.index))
            return Parameter(len(slots) - 1, operand.pos)
        return operand

    predicates = []
    for predicate in statement.predicates:
        left_const = isinstance(predicate.left, (Literal, Parameter))
        right_const = isinstance(predicate.right, (Literal, Parameter))
        if left_const == right_const:
            # column-column (a join) or literal-literal (rejected later):
            # neither side is a bindable constant slot.
            predicates.append(predicate)
            continue
        predicates.append(
            Comparison(
                lift(predicate.left),
                predicate.op,
                lift(predicate.right),
                predicate.pos,
            )
        )
    limit = statement.limit
    if isinstance(limit, int):
        slots.append(("lit", limit))
        limit = Parameter(len(slots) - 1)
    elif isinstance(limit, Parameter):
        slots.append(("arg", limit.index))
        limit = Parameter(len(slots) - 1, limit.pos)
    template = replace(
        statement, predicates=tuple(predicates), limit=limit
    )
    return template, tuple(slots)


def parameterize_sql(sql: str) -> ParameterizedQuery:
    """Parse ``sql`` and split it into template + parameter slots."""
    statement = parse(sql)
    template_statement, slots = parameterize(statement)
    return ParameterizedQuery(
        sql=sql,
        template=str(template_statement),
        statement=template_statement,
        slots=slots,
    )


def normalize_sql(sql: str) -> tuple[str, SelectStatement]:
    """Canonical (template) text for ``sql``, plus the template AST.

    Formatting differences (whitespace, keyword case, ``!=`` vs ``<>``)
    *and* constant differences (``v = 5`` vs ``v = 9``, ``LIMIT 10`` vs
    ``LIMIT 500``, explicit ``?``) all land on the same canonical text;
    semantically different statement shapes never collide.
    """
    parameterized = parameterize_sql(sql)
    return parameterized.template, parameterized.statement


def bind_statement(
    statement: SelectStatement, values: Sequence[Any]
) -> SelectStatement:
    """The template AST with every parameter replaced by its value."""

    def concrete(operand: Any) -> Any:
        if isinstance(operand, Parameter):
            return Literal(values[operand.index], operand.pos)
        return operand

    predicates = tuple(
        Comparison(
            concrete(p.left), p.op, concrete(p.right), p.pos
        )
        if isinstance(p.left, Parameter) or isinstance(p.right, Parameter)
        else p
        for p in statement.predicates
    )
    limit = statement.limit
    if isinstance(limit, Parameter):
        limit = values[limit.index]
    return replace(statement, predicates=predicates, limit=limit)


def bind_compiled(
    compiled: "CompiledQuery", values: Sequence[Any], sql: str
) -> "CompiledQuery":
    """A concrete, executable copy of a compiled template.

    Cheap by construction — dataclass copies substituting the bound
    values into the filters and the LIMIT; no parsing, no catalog
    resolution, no routing.  Raises :class:`SqlError` when a LIMIT
    parameter is bound to anything but a positive integer.
    """
    filters = tuple(
        replace(f, value=values[f.value.index]) if f.is_template else f
        for f in compiled.filters
    )
    k = compiled.k
    if isinstance(k, Parameter):
        bound = values[k.index]
        if isinstance(bound, bool) or not isinstance(bound, int) or bound < 1:
            raise SqlError(
                f"LIMIT parameter must be a positive integer, got {bound!r}"
            )
        k = bound
    return replace(
        compiled,
        sql=sql,
        statement=bind_statement(compiled.statement, values),
        k=k,
        filters=filters,
    )


def fingerprint_drift(before: tuple, after: tuple) -> float:
    """How far the catalog moved between two fingerprints, in [0, inf].

    Fingerprints are tuples of ``(name, schema, len, version)`` per
    referenced relation (:func:`repro.engine.catalog.database_fingerprint`).
    Returns 0.0 for identical data generations, the maximum relative
    cardinality change for same-shaped catalogs, and ``inf`` when the
    shape changed (relations appeared/disappeared/re-schemed) or any
    relation flipped between empty and non-empty — the cases where
    cached routing decisions are not worth keeping.
    """
    if before == after:
        return 0.0
    if len(before) != len(after):
        return math.inf
    drift = 0.0
    for old, new in zip(sorted(before), sorted(after)):
        if old[0] != new[0] or old[1] != new[1]:
            return math.inf  # different relation or schema
        old_len, new_len = old[2], new[2]
        if (old_len == 0) != (new_len == 0):
            return math.inf  # empty flip: routing special-cases this
        if old_len < 0 or new_len < 0:
            return math.inf  # a referenced relation is missing
        drift = max(drift, abs(new_len - old_len) / max(1, old_len))
    return drift


@dataclass
class CachedPlan:
    """One plan-cache entry: a statement template plus its costed plan.

    ``compiled`` is the *template* compilation (filters and LIMIT may
    hold :class:`Parameter` sentinels); ``plan`` was costed on
    ``fingerprint`` with ``costed_values`` bound.  ``hits`` is bumped
    atomically under the cache lock; ``recosts`` counts in-place
    re-routings after large data drift.

    For any-k engines the entry also carries the compiled enumeration
    kernel, via ``plan.kernel_slot`` (a
    :class:`repro.anyk.kernels.KernelSlot`): the slot rides inside the
    plan dataclass, and the service's soft-hit re-bind copies the plan
    *sharing the slot by reference*, so a warm statement reuses the
    shape's compiled template without planning or kernel setup.  A
    :meth:`recost` replaces the plan wholesale — and with it the slot —
    exactly when the routing (and possibly the shape) changed.
    """

    compiled: "CompiledQuery"
    plan: "Plan"
    fingerprint: tuple = ()
    costed_values: tuple = ()
    hits: int = field(default=0)
    recosts: int = field(default=0)

    @property
    def kernel_slot(self):
        """The entry's compiled-kernel pin (None for non-any-k plans)."""
        return getattr(self.plan, "kernel_slot", None)

    def recost(
        self, plan: "Plan", fingerprint: tuple, values: tuple
    ) -> None:
        """Swap in a freshly costed plan (the entry stays in place, so
        the LRU order and per-entry hit history survive the re-route)."""
        self.plan = plan
        self.fingerprint = fingerprint
        self.costed_values = values
        self.recosts += 1


def _bump_hits(entry: CachedPlan) -> None:
    entry.hits += 1


class PlanCache:
    """Bounded, thread-safe LRU over :class:`CachedPlan` entries
    (a thin veneer over :class:`repro.util.lru.LruCache`)."""

    def __init__(self, maxsize: int = 128) -> None:
        self._lru = LruCache(maxsize)
        self._recosts = 0

    @staticmethod
    def key(
        normalized_sql: str,
        engine: Optional[str],
        workers: int = 1,
    ) -> tuple:
        """The cache key: template text + engine override + parallelism
        budget (both of the latter route differently).  Catalog
        fingerprints live *inside* the entry (validate-on-hit), not in
        the key — a steady mutation trickle must not turn every repeat
        statement into a miss."""
        return (normalized_sql, engine, workers)

    def lookup(self, key: tuple) -> Optional[CachedPlan]:
        # The per-entry hit bump runs under the LRU lock: concurrent
        # lookups of a hot template must not lose increments.
        return self._lru.get(key, on_hit=_bump_hits)

    def note_recost(self) -> None:
        """Account a validated-then-recosted hit as a miss: the caller
        re-ran statistics and routing, so the cache saved nothing."""
        self._lru.reclassify_hit_as_miss()
        self._recosts += 1

    def store(self, key: tuple, entry: CachedPlan) -> None:
        self._lru.put(key, entry)

    def __len__(self) -> int:
        return len(self._lru)

    def clear(self) -> None:
        self._lru.clear()
        self._recosts = 0

    def info(self) -> dict:
        """Hit/miss/recost counters for the ``stats`` endpoint."""
        out = self._lru.info()
        out["recosts"] = self._recosts
        return out
