"""The asyncio TCP transport: pipelined frames over an event loop.

One event loop (run by :meth:`AnykTCPServer.serve_forever`, usually on a
daemon thread via :func:`serve_background`) owns every connection; each
decoded frame is dispatched to the shared
:class:`~repro.server.service.QueryService` on a bounded thread-pool
executor, so the loop never blocks on engine work and a connection can
have any number of requests **in flight at once** (pipelining).
Responses are written under a per-connection lock — frames interleave
between requests, never within one — and carry the request ``id`` so
clients match them up even when independent requests complete out of
order.

Framing starts as JSON lines and may be switched per connection to
length-prefixed binary frames by a ``hello`` op (handled here in the
read loop, because framing is transport state; the hello *response*
still travels in the old framing).  Both decoders enforce the server's
frame limit: an oversized request is discarded and answered with a
``frame_too_large`` error, and the connection stays usable.

Cursors are server-global, not per-connection: a cursor opened on one
connection can be resumed from another (or after a reconnect), which is
the whole point of resumable enumeration state.

Shutdown drains gracefully: the listener closes first (no new
connections), read loops stop consuming frames, and every in-flight
request runs to completion with its response flushed whole — a client
mid-fetch sees a complete final frame, then EOF, never a torn frame.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.data.database import Database
import repro.server.protocol as protocol
from repro.server.service import QueryService


class _FrameTooLarge(Exception):
    """An oversized request frame (already discarded; answerable)."""


class _Connection:
    """One client connection: a pipelined read loop plus a framed writer."""

    def __init__(
        self,
        server: "AnykTCPServer",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self.framing = "json"
        # Whole-frame writes: response bytes from concurrently completing
        # requests must interleave only at frame boundaries.
        self._write_lock = asyncio.Lock()
        #: Response tasks for dispatched-but-unanswered requests.
        self._inflight: set[asyncio.Task] = set()

    # -- reading -------------------------------------------------------
    async def _read_frame(self) -> Optional[bytes]:
        """The next raw request payload, or None at EOF.

        Raises :class:`_FrameTooLarge` after discarding an oversized
        request (both framings), leaving the stream positioned at the
        next frame.
        """
        if self.framing == "binary":
            return await self._read_binary_frame()
        return await self._read_line()

    async def _read_line(self) -> Optional[bytes]:
        limit = self.server.max_frame_bytes
        try:
            return await self.reader.readuntil(b"\n")
        except asyncio.IncompleteReadError as exc:
            # EOF: a final unterminated line still counts as a request.
            return exc.partial if exc.partial.strip() else None
        except asyncio.LimitOverrunError as exc:
            # Oversized line: discard through its terminating newline so
            # the *next* pipelined request parses cleanly, then report.
            consumed = exc.consumed
            while True:
                try:
                    await self.reader.readexactly(consumed)
                    await self.reader.readuntil(b"\n")
                    break
                except asyncio.LimitOverrunError as more:
                    consumed = more.consumed
                except asyncio.IncompleteReadError:
                    break  # EOF inside the oversized request
            raise _FrameTooLarge(
                f"request exceeds the {limit}-byte frame limit"
            ) from None

    async def _read_binary_frame(self) -> Optional[bytes]:
        try:
            header = await self.reader.readexactly(protocol.FRAME_HEADER.size)
        except asyncio.IncompleteReadError:
            return None  # EOF (a torn header is unanswerable anyway)
        (length,) = protocol.FRAME_HEADER.unpack(header)
        if length > self.server.max_frame_bytes:
            remaining = length
            while remaining > 0:
                chunk = await self.reader.read(min(65536, remaining))
                if not chunk:
                    break
                remaining -= len(chunk)
            raise _FrameTooLarge(
                f"request of {length} bytes exceeds the "
                f"{self.server.max_frame_bytes}-byte frame limit"
            )
        try:
            return await self.reader.readexactly(length)
        except asyncio.IncompleteReadError:
            return None

    # -- writing -------------------------------------------------------
    async def _send(self, message: dict) -> None:
        if self.framing == "binary":
            data = protocol.encode_frame(message)
        else:
            data = protocol.encode(message)
        async with self._write_lock:
            self.writer.write(data)
            await self.writer.drain()

    async def _respond(self, pending) -> None:
        """Await one dispatched request's response and write it."""
        try:
            response = await pending  # service.handle never raises
            await self._send(response)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response; the read loop sees EOF

    # -- the hello op (framing is transport state) ---------------------
    async def _hello(self, request: dict) -> None:
        request_id = request.get("id")
        try:
            protocol.validate_request(request)
        except protocol.ProtocolError as exc:
            await self._send(
                protocol.error_response(request_id, exc.code, str(exc))
            )
            return
        frames = request.get("frames", "json")
        # Settle earlier pipelined requests first: their responses must
        # travel in the framing they were sent under, and so must the
        # hello response itself — the switch takes effect strictly after.
        await self.settle()
        await self._send(
            protocol.ok_response(
                request_id,
                {
                    "frames": frames,
                    "protocol": protocol.PROTOCOL_VERSION,
                    "pipelining": True,
                    "max_frame_bytes": self.server.max_frame_bytes,
                },
            )
        )
        self.framing = frames

    # -- lifecycle -----------------------------------------------------
    async def run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            try:
                raw = await self._read_frame()
            except _FrameTooLarge as exc:
                await self._send(
                    protocol.error_response(
                        None, protocol.FRAME_TOO_LARGE, str(exc)
                    )
                )
                continue
            except (ConnectionResetError, BrokenPipeError):
                return
            if raw is None:
                return  # EOF
            if self.framing == "json" and not raw.strip():
                continue
            try:
                request = protocol.decode_line(raw)
            except protocol.ProtocolError as exc:
                await self._send(
                    protocol.error_response(None, exc.code, str(exc))
                )
                continue
            if request.get("op") == "hello":
                await self._hello(request)
                continue
            # Pipelining: dispatch without waiting — the loop goes
            # straight back to reading while the executor runs the
            # request and a response task writes the answer whenever
            # it completes.
            pending = loop.run_in_executor(
                self.server.executor, self.server.service.handle, request
            )
            task = loop.create_task(self._respond(pending))
            self._inflight.add(task)
            task.add_done_callback(self._retire)

    def _retire(self, task: asyncio.Task) -> None:
        self._inflight.discard(task)
        # Retrieve the outcome: a response task torn down by a signal
        # (^C lands *inside* whatever frame is running) finishes with
        # that exception already set, and nothing ever gathers a task
        # that completed before the drain — unretrieved, it would log
        # "Task exception was never retrieved" at garbage collection.
        if not task.cancelled():
            task.exception()

    async def settle(self) -> None:
        """Wait until every dispatched request has been answered."""
        while self._inflight:
            await asyncio.gather(
                *list(self._inflight), return_exceptions=True
            )

    async def drain(self) -> None:
        """Graceful close: answer everything in flight, flush, stop.

        Called when the read loop ends (EOF) or is cancelled (server
        shutdown).  In-flight responses are *awaited*, not abandoned, so
        the client's last frames arrive whole before the FIN.
        """
        await self.settle()
        try:
            async with self._write_lock:
                await self.writer.drain()
        except Exception:
            pass


class AnykTCPServer:
    """The ranked-enumeration service bound to a TCP address.

    An asyncio server behind the blocking ``socketserver``-style surface
    the rest of the repo (CLI, tests, benchmarks, load generator) drives:
    construct, ``serve_forever()`` (or :func:`serve_background`), then
    ``shutdown()`` + ``server_close()``.  The listening socket binds in
    the constructor — :attr:`bound_port` is readable immediately, and
    early clients queue in the accept backlog until the loop starts.

    ``port=0`` binds an ephemeral port; read it back from
    :attr:`bound_port`.  The server owns its :class:`QueryService` (pass
    one in to share it with in-process callers, e.g. benchmarks comparing
    wire vs direct dispatch).

    ``executor_threads`` bounds the thread pool that runs
    :meth:`QueryService.handle` calls — the service layer is
    thread-safe, and the bound is what keeps a pipelining client from
    turning into an unbounded thread spawn.  ``max_frame_bytes`` caps
    request frames in both framings (oversized requests are answered
    with ``frame_too_large``, never a hangup).
    """

    def __init__(
        self,
        db: Database,  # or a repro.dynamic.VersionedDatabase to share
        host: str = "127.0.0.1",
        port: int = protocol.DEFAULT_PORT,
        service: Optional[QueryService] = None,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        executor_threads: int = 8,
        **service_options,
    ) -> None:
        if max_frame_bytes < 1024:
            raise ValueError("max_frame_bytes must be at least 1024")
        self.service = service or QueryService(db, **service_options)
        self.max_frame_bytes = max_frame_bytes
        self.executor = ThreadPoolExecutor(
            max_workers=executor_threads,
            thread_name_prefix="repro-serve-worker",
        )
        self._sock = socket.create_server(
            (host, port), backlog=128, reuse_port=False
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event = asyncio.Event()
        self._stopped = threading.Event()
        self._serving = False
        self._connections: set[asyncio.Task] = set()
        self._closed = False

    @property
    def bound_port(self) -> int:
        return self._sock.getsockname()[1]

    # -- the event loop ------------------------------------------------
    def serve_forever(self) -> None:
        """Run the event loop in the calling thread until shutdown."""
        loop = asyncio.new_event_loop()
        # ^C is delivered into whatever frame the loop happens to be
        # running — often a connection or response task.  The task dies
        # with the KeyboardInterrupt *and* the loop re-raises it out of
        # run_until_complete (BaseExceptions propagate through Task
        # step), so the shutdown below already handles it; the default
        # handler would additionally log the dead task as an unhandled
        # exception, which reads like a crash on every clean ^C.
        def _quiet_interrupt(loop, context) -> None:
            if isinstance(context.get("exception"), KeyboardInterrupt):
                return
            loop.default_exception_handler(context)

        loop.set_exception_handler(_quiet_interrupt)
        self._loop = loop
        self._serving = True
        try:
            server = loop.run_until_complete(
                asyncio.start_server(
                    self._on_connection,
                    sock=self._sock,
                    # readuntil() needs headroom past the frame limit to
                    # find the newline of a maximum-size line.
                    limit=self.max_frame_bytes + 2,
                )
            )
            try:
                loop.run_until_complete(self._stop_event.wait())
            except KeyboardInterrupt:
                pass  # ^C drains exactly like shutdown()
            loop.run_until_complete(self._graceful_drain(server))
        finally:
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()
            self._loop = None
            self._serving = False
            self._stopped.set()

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(self, reader, writer)
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await connection.run()
            await connection.drain()
        except asyncio.CancelledError:
            # Server shutdown: stop reading, but finish what's in flight
            # and flush it whole before the socket closes.
            await connection.drain()
        except Exception:
            pass  # a broken connection must not take the loop down
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _graceful_drain(self, server: asyncio.base_events.Server) -> None:
        # Stop accepting first, then unwind connections: cancelling a
        # read loop triggers its drain path (finish in-flight, flush).
        server.close()
        await server.wait_closed()
        tasks = list(self._connections)
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    # -- the blocking control surface ----------------------------------
    def shutdown(self) -> None:
        """Stop the loop (threadsafe) and wait for the graceful drain."""
        if not self._serving:
            return
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._stop_event.set)
        except RuntimeError:
            return  # the loop just closed under us: already stopped
        self._stopped.wait(timeout=30.0)

    def server_close(self) -> None:
        """Free every cursor's enumeration state along with the socket."""
        if self._closed:
            return
        self._closed = True
        self.service.shutdown()
        self.executor.shutdown(wait=False)
        try:
            self._sock.close()
        except OSError:
            pass


def serve_background(
    db: Database,
    host: str = "127.0.0.1",
    port: int = 0,
    service: Optional[QueryService] = None,
    **service_options,
) -> tuple[AnykTCPServer, int]:
    """Start a server on a daemon thread; returns ``(server, port)``.

    The convenience entry for tests, examples, and benchmarks.  Stop it
    with ``server.shutdown(); server.server_close()``.  The port is
    bound (and connectable — the backlog queues clients) before this
    returns, even if the loop thread hasn't scheduled yet.
    """
    server = AnykTCPServer(
        db, host=host, port=port, service=service, **service_options
    )
    thread = threading.Thread(
        target=server.serve_forever,
        name="repro-serve",
        daemon=True,
    )
    thread.start()
    return server, server.bound_port
