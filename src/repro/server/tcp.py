"""JSON-lines-over-TCP transport: a stdlib ``socketserver`` thread pool.

Each connection gets a handler thread (``ThreadingMixIn`` with daemon
threads — no new dependencies); each request line is dispatched to the
shared :class:`~repro.server.service.QueryService`, whose cursor manager
and caches are thread-safe.  Cursors are server-global, not
per-connection: a cursor opened on one connection can be resumed from
another (or after a reconnect), which is the whole point of resumable
enumeration state.
"""

from __future__ import annotations

import socketserver
import threading
from typing import Optional

from repro.data.database import Database
import repro.server.protocol as protocol
from repro.server.service import QueryService


class _RequestHandler(socketserver.StreamRequestHandler):
    """One connection: read request lines, write response lines."""

    def handle(self) -> None:
        service: QueryService = self.server.service  # type: ignore[attr-defined]
        for line in self.rfile:
            if not line.strip():
                continue
            try:
                request = protocol.decode_line(line)
            except protocol.ProtocolError as exc:
                response = protocol.error_response(None, exc.code, str(exc))
            else:
                response = service.handle(request)
            try:
                self.wfile.write(protocol.encode(response))
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return  # client went away mid-response; nothing to do


class AnykTCPServer(socketserver.ThreadingMixIn, socketserver.TCPServer):
    """The ranked-enumeration service bound to a TCP address.

    ``port=0`` binds an ephemeral port; read it back from
    :attr:`bound_port`.  The server owns its :class:`QueryService` (pass
    one in to share it with in-process callers, e.g. benchmarks comparing
    wire vs direct dispatch).
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        db: Database,  # or a repro.dynamic.VersionedDatabase to share
        host: str = "127.0.0.1",
        port: int = protocol.DEFAULT_PORT,
        service: Optional[QueryService] = None,
        **service_options,
    ) -> None:
        self.service = service or QueryService(db, **service_options)
        super().__init__((host, port), _RequestHandler)

    @property
    def bound_port(self) -> int:
        return self.server_address[1]

    def server_close(self) -> None:
        # Free every cursor's enumeration state along with the socket.
        self.service.shutdown()
        super().server_close()


def serve_background(
    db: Database,
    host: str = "127.0.0.1",
    port: int = 0,
    service: Optional[QueryService] = None,
    **service_options,
) -> tuple[AnykTCPServer, int]:
    """Start a server on a daemon thread; returns ``(server, port)``.

    The convenience entry for tests, examples, and benchmarks.  Stop it
    with ``server.shutdown(); server.server_close()``.
    """
    server = AnykTCPServer(
        db, host=host, port=port, service=service, **service_options
    )
    thread = threading.Thread(
        target=server.serve_forever,
        name="repro-serve",
        daemon=True,
    )
    thread.start()
    return server, server.bound_port
