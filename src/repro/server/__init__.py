"""Concurrent any-k query service: ranked enumeration as a server.

The anytime property of any-k algorithms — answers stream out in rank
order, the caller stops whenever satisfied — becomes *pagination* the
moment enumeration state survives between requests.  This package keeps a
paused :class:`~repro.anyk.api.PausableStream` per open cursor, so a
client's second ``fetch`` resumes the ranked stream exactly where the
first left off instead of recomputing a larger top-k from scratch.

Layers (transport-agnostic core first, wire last):

- :mod:`repro.server.plancache` — parameterized plan cache: literals are
  lifted into a bound-parameter vector during normalization (and ``?``
  placeholders bind explicitly), so every instantiation of a query
  template shares one LRU entry, validated against a catalog fingerprint
  on each hit;
- :mod:`repro.server.cursors` — the session/cursor manager with an
  admission limit and idle eviction;
- :mod:`repro.server.service` — :class:`QueryService`, the dict-in /
  dict-out request handler (usable in-process, no sockets);
- :mod:`repro.server.protocol` — the wire protocol: JSON-lines by
  default, length-prefixed binary frames after a ``hello`` negotiation,
  ``params`` vectors, multi-request ``batch`` envelopes, and a frame
  size ceiling;
- :mod:`repro.server.tcp` — an asyncio TCP server: pipelined requests
  per connection, a bounded executor for engine work, and a graceful
  drain that finishes in-flight responses whole;
- :mod:`repro.server.client` — :class:`Client` (one request at a time,
  strict timeouts) and :class:`PipelinedClient` (many in flight on one
  socket, futures matched by id);
- :mod:`repro.server.cli` — the ``repro-serve`` console script.

Quickstart::

    from repro.data.generators import random_graph_database
    from repro.server import serve_background, Client

    db = random_graph_database(num_edges=2000, num_nodes=300, seed=1)
    server, port = serve_background(db, port=0)       # ephemeral port
    with Client(port=port) as client:
        cur = client.execute(
            "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
            "WHERE e1.src > ? ORDER BY weight LIMIT ?", params=[5, 100],
            batch=10)
        for row, weight in cur:                        # fetches lazily
            print(weight, row)
    server.shutdown()
"""

from repro.server.client import (
    Client,
    ClientTimeout,
    DeadlineExceeded,
    PipelinedClient,
    ResultCursor,
    ServerError,
)
from repro.server.cursors import CursorLimitError, UnknownCursorError
from repro.server.plancache import PlanCache, normalize_sql, parameterize_sql
from repro.server.service import QueryService
from repro.server.tcp import AnykTCPServer, serve_background

__all__ = [
    "AnykTCPServer",
    "Client",
    "ClientTimeout",
    "CursorLimitError",
    "DeadlineExceeded",
    "PipelinedClient",
    "PlanCache",
    "QueryService",
    "ResultCursor",
    "ServerError",
    "UnknownCursorError",
    "normalize_sql",
    "parameterize_sql",
    "serve_background",
]
