"""The ``repro-serve`` console script: load a database, serve it.

Sources, one of:

- ``--data DIR`` — a directory of ``<relation>.csv`` files (the
  :mod:`repro.data.io` format, same as ``repro-sql --data``);
- ``--demo {graph,path,star}`` — the built-in demo databases;
- ``--gen SPEC`` — a generator spec, e.g.
  ``path:length=3,size=500,domain=60,seed=7`` or
  ``graph:num_edges=2000,num_nodes=300,seed=1``.

Examples::

    repro-serve --demo graph --port 7632
    repro-serve --data ./relations --max-cursors 128
    repro-serve --gen "star:arms=3,size=1000,domain=80,seed=7" --port 0

``--port 0`` binds an ephemeral port; the bound address is printed on a
``listening on host:port`` line once the socket is ready (scripts can
wait for that line).
"""

from __future__ import annotations

import argparse
from typing import Callable, Optional, Sequence

from repro.data.database import Database
from repro.data.generators import (
    path_database,
    random_graph_database,
    star_database,
)
import repro.server.protocol as protocol

#: Generator-spec name -> factory taking keyword int arguments.
GENERATORS: dict[str, Callable[..., Database]] = {
    "path": path_database,
    "star": star_database,
    "graph": random_graph_database,
}


def parse_generator_spec(spec: str) -> Database:
    """``name:key=value,...`` -> a generated database (ints only)."""
    name, _, rest = spec.partition(":")
    name = name.strip()
    if name not in GENERATORS:
        raise SystemExit(
            f"repro-serve: unknown generator {name!r}; known: "
            + ", ".join(sorted(GENERATORS))
        )
    kwargs = {}
    if rest.strip():
        for item in rest.split(","):
            key, eq, value = item.partition("=")
            if not eq:
                raise SystemExit(
                    f"repro-serve: bad generator option {item!r} "
                    "(expected key=value)"
                )
            try:
                kwargs[key.strip()] = int(value)
            except ValueError:
                raise SystemExit(
                    f"repro-serve: generator option {key.strip()!r} must be "
                    f"an integer, got {value!r}"
                ) from None
    try:
        return GENERATORS[name](**kwargs)
    except TypeError as exc:
        raise SystemExit(f"repro-serve: bad spec for {name!r}: {exc}") from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve ranked top-k SQL over weighted relations: "
        "a JSON-lines-over-TCP any-k query service with resumable cursors "
        "and a plan cache.",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--data",
        metavar="DIR",
        help="directory of <relation>.csv files (header row, optional "
        "trailing __weight__ column)",
    )
    source.add_argument(
        "--demo",
        choices=("graph", "path", "star"),
        help="serve a built-in demo database",
    )
    source.add_argument(
        "--gen",
        metavar="SPEC",
        help="generator spec, e.g. 'path:length=3,size=500,domain=60,seed=7' "
        "or 'graph:num_edges=2000,num_nodes=300,seed=1'",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="seed for --demo databases"
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=protocol.DEFAULT_PORT,
        help=f"TCP port (default {protocol.DEFAULT_PORT}; 0 = ephemeral)",
    )
    parser.add_argument(
        "--max-cursors",
        type=int,
        default=64,
        help="admission limit on concurrently open cursors",
    )
    parser.add_argument(
        "--max-mem-mb",
        type=float,
        default=None,
        metavar="MB",
        help="server-wide memory watermark: once the accounted live bytes "
        "of all open cursors exceed MB, new queries are refused with a "
        "mem_pressure error after evicting idle cursors (default: no "
        "watermark; accounting still runs)",
    )
    parser.add_argument(
        "--plan-cache",
        type=int,
        default=128,
        help="LRU capacity of the plan cache",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=100,
        help="default rows per fetch when a request does not say",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="partition-parallelism budget per query: shard the database "
        "across this many worker processes when the router judges it "
        "worthwhile (default 1 = serial)",
    )
    parser.add_argument(
        "--max-frame-bytes",
        type=int,
        default=protocol.MAX_FRAME_BYTES,
        metavar="BYTES",
        help="largest request frame accepted, in bytes (both the JSON-"
        "lines and the binary framing; oversized requests are answered "
        f"with a frame_too_large error; default {protocol.MAX_FRAME_BYTES})",
    )
    parser.add_argument(
        "--executor-threads",
        type=int,
        default=8,
        metavar="N",
        help="bound on the thread pool executing requests behind the "
        "event loop (pipelined requests beyond it queue; default 8)",
    )
    parser.add_argument(
        "--readonly",
        action="store_true",
        help="refuse 'mutate' requests (INSERT/DELETE) with a clean "
        "sql_error instead of committing new snapshots",
    )
    parser.add_argument(
        "--trace-capacity",
        type=int,
        default=None,
        metavar="N",
        help="ring-buffer capacity of the span tracer (recent traces "
        "kept for the 'trace' op; default: the tracer's built-in size)",
    )
    parser.add_argument(
        "--query-log",
        metavar="PATH",
        default=None,
        help="append sampled per-request JSON-lines records to PATH "
        "(errors and slow requests are always captured)",
    )
    parser.add_argument(
        "--log-sample",
        type=float,
        default=1.0,
        metavar="FRACTION",
        help="fraction of loggable requests to record in --query-log "
        "(0..1, default 1.0 = everything)",
    )
    parser.add_argument(
        "--log-slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="force-capture requests slower than MS into --query-log "
        "regardless of --log-sample (default 100)",
    )
    parser.add_argument(
        "--log-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="rotate --query-log to PATH.1 when it exceeds BYTES "
        "(default 5000000)",
    )
    parser.add_argument(
        "--slo",
        action="append",
        metavar="SPEC",
        default=None,
        help="an SLO spec evaluated by the 'slo' op, e.g. "
        "'query_p99_ms<=25', 'ttf_ms<=5', 'error_rate<=0.1%%', "
        "'availability>=99.9%%' (repeatable; default: a stock set)",
    )
    return parser


def load_database(args: argparse.Namespace) -> Database:
    # Deferred import keeps `repro-serve --help` snappy.
    from repro.sql.cli import DEMOS, load_directory

    if args.data:
        return load_directory(args.data)
    if args.gen:
        return parse_generator_spec(args.gen)
    return DEMOS[args.demo or "graph"](args.seed)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    db = load_database(args)
    from repro.dynamic import VersionedDatabase
    from repro.obs.events import EventLog
    from repro.obs.slo import SloError, parse_slos
    from repro.server.tcp import AnykTCPServer

    if args.slo is not None:
        try:
            parse_slos(args.slo)
        except SloError as exc:
            raise SystemExit(f"repro-serve: bad --slo spec: {exc}") from None
    event_log = None
    if args.query_log:
        if not 0.0 <= args.log_sample <= 1.0:
            raise SystemExit(
                "repro-serve: --log-sample must be between 0 and 1, "
                f"got {args.log_sample}"
            )
        log_options = {"sample": args.log_sample}
        if args.log_slow_ms is not None:
            log_options["slow_ms"] = args.log_slow_ms
        if args.log_max_bytes is not None:
            log_options["max_bytes"] = args.log_max_bytes
        try:
            event_log = EventLog(args.query_log, **log_options)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro-serve: cannot open --query-log: {exc}")

    server = AnykTCPServer(
        # Ownership handover: the CLI never touches db again, so skip the
        # isolation copy a library caller would get by default.
        VersionedDatabase(db, copy=False),
        host=args.host,
        port=args.port,
        max_frame_bytes=args.max_frame_bytes,
        executor_threads=args.executor_threads,
        max_cursors=args.max_cursors,
        max_mem_mb=args.max_mem_mb,
        plan_cache_size=args.plan_cache,
        default_batch=args.batch,
        workers=args.workers,
        readonly=args.readonly,
        trace_capacity=args.trace_capacity,
        event_log=event_log,
        slos=args.slo,
    )
    names = ", ".join(
        f"{name}({len(db[name])})" for name in db.names()
    )
    print(f"repro-serve: serving {names}", flush=True)
    if event_log is not None:
        print(
            f"repro-serve: query log -> {args.query_log} "
            f"(sample={args.log_sample})",
            flush=True,
        )
    print(
        f"repro-serve: listening on {args.host}:{server.bound_port}",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro-serve: shutting down", flush=True)
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
