"""The transport-agnostic query service: dicts in, dicts out.

:class:`QueryService` is the whole server minus the sockets — request
validation, plan caching, cursor lifecycle, deadlines, and error mapping
all live here, so tests and benchmarks exercise the real code paths
in-process and the TCP layer (:mod:`repro.server.tcp`) stays a dumb pipe.

The request/response shapes are those of
:mod:`repro.server.protocol`; :meth:`QueryService.handle` is the single
entry point the wire handler calls per line.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace as dc_replace
from typing import Any, Optional, Sequence

from repro.anyk.api import PausableStream, StreamClosed
from repro.data.database import Database
from repro.dynamic import MutationError, VersionedDatabase
from repro.engine.catalog import StatsCache, database_fingerprint
from repro.engine.executor import apply_mutation, execute
from repro.engine.planner import plan_compiled
from repro.obs.delay import DELAY_BOUNDS, DelayProfile
from repro.obs.events import EventLog, sql_hash
from repro.obs.memory import (
    MEM_BOUNDS,
    QERROR_BOUNDS,
    MemoryProfile,
    q_error,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_SLOS,
    DEFAULT_WINDOWS_S,
    SloEngine,
    parse_slos,
    spec_counts,
)
from repro.obs.trace import parse_traceparent, render_trace_tree, tracer
from repro.util.histogram import Histogram
from repro.query.cq import QueryError
# Submodule-style import: safe under the package's partially-initialized
# state when ``repro.server/__init__`` pulls this module in (PEP 328's
# sys.modules fallback applies to ``import a.b as b``).
import repro.server.protocol as protocol
from repro.server.cursors import (
    CursorLimitError,
    CursorManager,
    MemoryPressureError,
    UnknownCursorError,
)
from repro.server.plancache import (
    RECOST_DRIFT,
    CachedPlan,
    PlanCache,
    bind_compiled,
    fingerprint_drift,
    parameterize_sql,
)
from repro.sql import _check_engine
from repro.sql.analyzer import analyze_mutation, analyze_statement
from repro.sql.errors import SqlError
from repro.util.counters import Counters


@dataclass
class BoundPlan:
    """One request's executable view of a cached template entry.

    ``compiled`` is fully concrete (every parameter bound), ``plan`` is
    either the entry's own costed plan (the fast path: same catalog
    generation, same bound values) or a cheap per-request copy whose
    working instance is rebuilt from the request snapshot at execution
    time.  Mirrors the ``.compiled``/``.plan`` attribute shape of
    :class:`~repro.server.plancache.CachedPlan` so call sites read the
    same either way.  ``template`` is the statement's parameterized
    template text — the cache key's stable half, reused as the label of
    the planner Q-error histogram so every instantiation of one shape
    lands in the same series.
    """

    compiled: Any
    plan: Any
    template: Optional[str] = None


class QueryService:
    """Stateful any-k query service over one versioned database.

    Parameters
    ----------
    db:
        The catalog to serve — a plain :class:`Database` (wrapped in a
        fresh :class:`~repro.dynamic.VersionedDatabase` internally) or an
        existing ``VersionedDatabase`` to share with in-process writers.
        Mutations arrive through the ``mutate`` op and publish
        copy-on-write snapshots: open cursors keep draining the exact
        snapshot they were planned on, new queries see the newest
        version, and per-version fingerprints invalidate stale plan and
        statistics cache entries while untouched relations keep theirs.
    max_cursors:
        Admission limit on concurrently open cursors.
    max_mem_mb:
        Server-wide memory watermark in MB (``repro-serve
        --max-mem-mb``): once the accounted live bytes of all open
        cursors' engine structures reach it, new queries first trigger
        idle-cursor eviction and are then refused with a clean
        ``mem_pressure`` error while still over — admission control
        replacing an eventual OOM.  None (the default) disables the
        watermark; per-cursor accounting still runs.
    mem_evict_idle_s:
        Minimum idle age before memory pressure may evict a cursor
        (protects sessions a client is actively paging through).
    plan_cache_size / stats_cache_size:
        LRU capacities of the plan cache and the cached-stats catalog.
    default_batch:
        Rows per ``fetch`` when the request does not say.
    idle_evict_s:
        Idle age beyond which a cursor may be evicted under admission
        pressure (None: never evict, reject instead).
    workers:
        Partition-parallelism budget offered to the router per query
        (``repro-serve --workers``).  The router still declines sharding
        for small inputs and unshardable shapes; cursors over merged
        parallel streams pause/resume/evict exactly like serial ones.
    readonly:
        Refuse ``mutate`` requests with a clean ``sql_error``
        (``repro-serve --readonly``).
    trace_capacity:
        Resize the process tracer's ring buffer
        (``repro-serve --trace-capacity``; None keeps the current size).
    event_log:
        An :class:`~repro.obs.events.EventLog` to record sampled
        per-request events into (``repro-serve --query-log``).
    slos:
        SLO spec strings (see :mod:`repro.obs.slo`) evaluated over
        rolling windows and served by the ``slo`` op.  None means the
        generous :data:`~repro.obs.slo.DEFAULT_SLOS`; an explicit empty
        sequence disables evaluation.
    slo_windows_s:
        Rolling window lengths in seconds for burn-rate evaluation.
    """

    def __init__(
        self,
        db: Database,
        max_cursors: int = 64,
        max_mem_mb: Optional[float] = None,
        mem_evict_idle_s: float = 1.0,
        plan_cache_size: int = 128,
        stats_cache_size: int = 1024,
        default_batch: int = 100,
        idle_evict_s: Optional[float] = 600.0,
        workers: int = 1,
        readonly: bool = False,
        trace_capacity: Optional[int] = None,
        event_log: Optional[EventLog] = None,
        slos: Optional[Sequence[str]] = None,
        slo_windows_s: Sequence[float] = DEFAULT_WINDOWS_S,
    ) -> None:
        self.versioned = (
            db if isinstance(db, VersionedDatabase) else VersionedDatabase(db)
        )
        self.workers = workers
        self.readonly = readonly
        self.plan_cache = PlanCache(plan_cache_size)
        self.stats_cache = StatsCache(stats_cache_size)
        self.cursors = CursorManager(
            max_cursors,
            idle_evict_s=idle_evict_s,
            # Evicted sessions' work lands in the aggregate exactly like
            # explicitly closed ones.
            on_evict=self._retire,
        )
        self.default_batch = default_batch
        #: Memory watermark in bytes (None: no admission watermark).
        self.max_mem_bytes = (
            None if max_mem_mb is None else int(max_mem_mb * 1024 * 1024)
        )
        self.mem_evict_idle_s = mem_evict_idle_s
        self._mem_rejected = 0
        self._mem_evicted = 0
        #: Server-wide RAM-model work, aggregated from per-cursor counters
        #: when cursors close (thread-safe merge).
        self.counters = Counters()
        self._started = time.monotonic()
        self._metrics_lock = threading.Lock()
        self._queries = 0
        self._fetches = 0
        self._rows_served = 0
        self._mutations = 0
        self._requests = 0
        self._errors = 0
        # Observability: one metrics registry per service (tests stay
        # isolated), the *process* tracer enabled once (spans are
        # per-request, far off the per-result hot path), and per-engine
        # anytime-delay aggregates folded from cursors as they retire.
        tracer.enable()
        if trace_capacity is not None:
            tracer.set_capacity(trace_capacity)
        self.registry = MetricsRegistry()
        #: Per-op request wall time (ms) — errors included, since a
        #: failing request still costs the server time.  Backs the
        #: ``stats`` op's ``op_latency_ms`` (count/mean/max plus
        #: p50/p95/p99) and the ``metrics`` op's histogram series.
        self._op_latency = self.registry.histogram(
            "repro_op_latency_ms",
            "Per-op request wall time in ms (errors included)",
            labelnames=("op",),
        )
        self._delay_metric = self.registry.histogram(
            "repro_result_delay_ms",
            "In-engine inter-result (busy) delay in ms, by engine",
            labelnames=("engine",),
            bounds=DELAY_BOUNDS,
        )
        self._ttf_metric = self.registry.histogram(
            "repro_ttf_ms",
            "In-engine wall time to the first result in ms, by engine",
            labelnames=("engine",),
        )
        #: Per-cursor peak accounted bytes, by engine — the distribution
        #: the ``peak_mem_mb<=`` SLO evaluates.  Observed exactly once
        #: per retiring cursor (peaks are maxima, not sums: folding them
        #: into a live gauge would erase the distribution).
        self._mem_metric = self.registry.histogram(
            "repro_mem_peak_bytes",
            "Per-cursor peak accounted engine memory in bytes, by engine",
            labelnames=("engine",),
            bounds=MEM_BOUNDS,
        )
        #: Planner-feedback Q-error (max(est/actual, actual/est)) per
        #: statement template, recorded when a cursor retires with its
        #: enumeration run dry (a LIMIT-truncated stream says nothing
        #: about the true cardinality).
        self._qerror_metric = self.registry.histogram(
            "repro_plan_qerror",
            "Planner cardinality Q-error by statement template",
            labelnames=("template",),
            bounds=QERROR_BOUNDS,
        )
        self._errors_metric = self.registry.counter(
            "repro_errors_total",
            "Error responses by op and error code",
            labelnames=("op", "code"),
        )
        self._delay_lock = threading.Lock()
        #: engine name -> aggregate :class:`DelayProfile` (the ``stats``
        #: op's ``delay_profiles`` section).
        self.delay_profiles: dict[str, DelayProfile] = {}
        #: engine name -> aggregate :class:`MemoryProfile` (the ``stats``
        #: op's ``memory.profiles`` section); shares ``_delay_lock`` —
        #: both fold on the same retire path.
        self.memory_profiles: dict[str, MemoryProfile] = {}
        self.registry.add_collector(self._collect_samples)
        #: Sampled per-request JSON-lines log (None: not configured).
        self.event_log = event_log
        # Declarative SLOs over the registry's histograms + the request/
        # error totals, evaluated with multi-window burn rates by the
        # ``slo`` op.  The engine is pull-driven: ``handle`` ticks it
        # (time-gated) so rolling windows fill under steady load.
        self._slo_specs = parse_slos(DEFAULT_SLOS if slos is None else slos)
        self._slo_engine: Optional[SloEngine] = (
            SloEngine(self._slo_specs, self._slo_counts, windows_s=slo_windows_s)
            if self._slo_specs
            else None
        )

    @property
    def db(self) -> Database:
        """The currently published snapshot (a plain, immutable
        :class:`Database`; grab it once per request and keep using that
        object for a consistent view)."""
        return self.versioned.snapshot()

    # ------------------------------------------------------------------
    # Planning (cached)
    # ------------------------------------------------------------------
    def plan(
        self,
        sql: str,
        engine: Optional[str] = None,
        db: Optional[Database] = None,
        params: Optional[Sequence[Any]] = None,
    ) -> tuple[BoundPlan, bool]:
        """The (possibly cached) compiled statement + routed plan.

        Returns ``(bound, was_cached)``.  The cache keys on the
        statement's *parameterized template* — every comparison literal
        and the LIMIT lifted into a bound-value vector, explicit ``?``
        placeholders resolved from ``params`` — so all instantiations of
        one shape share a single entry.  The full pipeline (analyze →
        route, including filter materialization) runs only on a true
        miss; every other request costs one parse plus a cheap re-bind.

        Staleness is validated on hit against the request snapshot's
        fingerprint of the referenced relations:

        - no drift + identical bound values: the entry's plan (with its
          materialized working instance) is served as-is;
        - drift within :data:`~repro.server.plancache.RECOST_DRIFT` or
          different values: the routing is reused on a per-request plan
          copy whose filtered instance is rebuilt from the snapshot;
        - larger drift or an empty/non-empty flip: the entry is
          re-costed in place (counted as a miss — the cache saved no
          routing work).

        ``db`` pins the snapshot to plan against (defaults to newest).
        """
        _check_engine(engine)
        with tracer.span("parse"):
            parameterized = parameterize_sql(sql)
        values = parameterized.resolve(params)
        snapshot = db if db is not None else self.versioned.snapshot()
        referenced = frozenset(
            t.relation for t in parameterized.statement.tables
        )
        fingerprint = database_fingerprint(snapshot, only=referenced)
        key = PlanCache.key(parameterized.template, engine, self.workers)
        with tracer.span("cache_lookup") as lookup_span:
            entry = self.plan_cache.lookup(key)
            lookup_span.set(hit=entry is not None)
        if entry is None:
            with tracer.span("plan"):
                template = analyze_statement(
                    snapshot, sql, parameterized.statement
                )
                bound = bind_compiled(template, values, sql)
                routed = plan_compiled(
                    snapshot,
                    bound,
                    engine=engine,
                    stats_cache=self.stats_cache,
                    workers=self.workers,
                )
            entry = CachedPlan(
                template,
                routed,
                fingerprint=fingerprint,
                costed_values=values,
            )
            self.plan_cache.store(key, entry)
            return BoundPlan(bound, routed, parameterized.template), False
        bound = bind_compiled(entry.compiled, values, sql)
        drift = fingerprint_drift(entry.fingerprint, fingerprint)
        if drift > RECOST_DRIFT:
            # The data moved enough that the cached routing may be
            # genuinely wrong (e.g. rank-join over a since-emptied
            # input); re-cost from fresh statistics, in place.
            with tracer.span("plan") as span:
                span.set(recost=True, drift=round(drift, 4))
                routed = plan_compiled(
                    snapshot,
                    bound,
                    engine=engine,
                    stats_cache=self.stats_cache,
                    workers=self.workers,
                )
            entry.recost(routed, fingerprint, values)
            self.plan_cache.note_recost()
            return BoundPlan(bound, routed, parameterized.template), False
        if drift == 0.0 and values == entry.costed_values:
            # Fast path: same data generation, same binding — the
            # entry's materialized working instance is exactly right.
            return BoundPlan(bound, entry.plan, parameterized.template), True
        # Soft hit: the routing holds, but the filtered working instance
        # was materialized for other values (or a slightly different
        # generation) — drop it so execute() rebuilds the selections
        # from this request's own snapshot.
        plan = dc_replace(
            entry.plan,
            k=bound.k,
            working_db=None,
            working_cq=None,
            snapshot_version=snapshot.version,
        )
        return BoundPlan(bound, plan, parameterized.template), True

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def query(
        self,
        sql: str,
        engine: Optional[str] = None,
        fetch: int = 0,
        deadline: Optional[float] = None,
        params: Optional[Sequence[Any]] = None,
    ) -> dict:
        """Open a cursor for ``sql``; optionally inline the first rows.

        The cursor holds the *paused* enumeration: nothing beyond the
        inlined prefix is computed until the next ``fetch``.  ``params``
        binds the statement's ``?`` placeholders positionally.
        """
        # Refuse before planning: under overload (the admission limit's
        # regime), a doomed request must not pay parse+analyze+route or
        # pollute the plan cache.  cursors.open() re-checks at the end.
        self.cursors.ensure_capacity()
        self._ensure_memory_headroom()
        # One snapshot per request: plan and execute read the same data
        # generation even if a mutation commits mid-request, and the
        # cursor stays pinned to it for its whole lifetime.
        snapshot = self.versioned.snapshot()
        entry, was_cached = self.plan(
            sql, engine=engine, db=snapshot, params=params
        )
        session_counters = Counters()
        # Every cursor carries its own delay profile; the engine-side wrap
        # records TTF/TT(k)/inter-result delay as pages drain, and
        # _retire folds it into the per-engine aggregate on close/evict.
        profile = DelayProfile()
        # ... and its own space profile: the engines' structures report
        # entry counts into it at O(1) cost, the admission watermark sums
        # its live bytes, and _retire folds the peak into the per-engine
        # aggregate + histogram.
        memory = MemoryProfile()
        stream = PausableStream(
            execute(
                snapshot,
                entry.compiled,
                entry.plan,
                counters=session_counters,
                profile=profile,
                memory=memory,
            )
        )
        cursor = self.cursors.open(
            sql=sql,
            engine=entry.plan.engine,
            columns=entry.compiled.output_columns,
            stream=stream,
            counters=session_counters,
            profile=profile,
            memory=memory,
            template=entry.template,
            estimate=entry.plan.estimates.agm_bound,
            limit=entry.compiled.k,
        )
        with self._metrics_lock:
            self._queries += 1
        payload: dict[str, Any] = {
            "cursor": cursor.id,
            "columns": list(entry.compiled.output_columns),
            "engine": entry.plan.engine,
            "plan_cached": was_cached,
            # The snapshot generation the cursor is pinned to — every
            # page it ever serves drains exactly this version, which is
            # what lets a load generator replay sampled pages against a
            # serial recompute of the same generation.
            "version": snapshot.version,
            "rows": [],
            "done": False,
        }
        if fetch > 0:
            try:
                payload.update(self._fetch_into(cursor, fetch, deadline))
            except Exception:
                # The inline prefetch failed after the slot was taken; the
                # error response carries no cursor id, so an unreleased
                # slot would be unclosable and pin capacity forever.
                self._finish(cursor.id)
                raise
            if payload["done"]:
                self._finish(cursor.id)
                payload["cursor"] = None
        # After any inline prefetch, so the peak covers it.
        payload["mem"] = {
            "live_bytes": memory.live_bytes,
            "peak_bytes": memory.peak_bytes,
        }
        payload["results_emitted"] = cursor.emitted
        return payload

    def fetch(
        self,
        cursor_id: str,
        n: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> dict:
        """Resume a paused cursor for up to ``n`` more ranked results."""
        cursor = self.cursors.get(cursor_id)
        with self._metrics_lock:
            self._fetches += 1
        payload: dict[str, Any] = {"cursor": cursor_id}
        payload.update(
            self._fetch_into(cursor, n or self.default_batch, deadline)
        )
        if cursor.memory is not None:
            payload["mem"] = {
                "live_bytes": cursor.memory.live_bytes,
                "peak_bytes": cursor.memory.peak_bytes,
            }
        payload["emitted"] = cursor.emitted
        payload["results_emitted"] = cursor.emitted
        if payload["done"]:
            self._finish(cursor_id)
        return payload

    def _fetch_into(
        self, cursor, n: int, deadline: Optional[float]
    ) -> dict:
        try:
            with tracer.span(
                "page_fetch", cursor=cursor.id, n=n, engine=cursor.engine
            ) as span:
                rows, done = cursor.fetch(n, deadline=deadline)
                span.set(rows=len(rows), done=done)
        except StreamClosed:
            # Lost the race with a concurrent close/eviction after the
            # cursor lookup: the session is gone, and saying "done" would
            # silently truncate the ranked stream.
            raise UnknownCursorError(
                f"cursor {cursor.id!r} was closed while this fetch was in "
                "flight"
            ) from None
        with self._metrics_lock:
            self._rows_served += len(rows)
        out: dict[str, Any] = {
            "rows": protocol.jsonable_rows(rows),
            "done": done,
        }
        if (
            not done
            and deadline is not None
            and len(rows) < n
            and time.monotonic() >= deadline
        ):
            out["deadline_exceeded"] = True
        return out

    def _finish(self, cursor_id: str) -> None:
        """Close a drained cursor, folding its work into the aggregate."""
        try:
            cursor = self.cursors.close(cursor_id)
        except UnknownCursorError:
            return
        self._retire(cursor)

    def _ensure_memory_headroom(self) -> None:
        """Admission watermark: evict idle cursors under memory pressure,
        refuse with :class:`MemoryPressureError` while still over.

        Runs *before* planning, like :meth:`CursorManager.ensure_capacity`
        — a doomed request must not pay for a plan or build any engine
        state the watermark exists to bound.
        """
        if self.max_mem_bytes is None:
            return
        if self.cursors.live_mem_bytes() < self.max_mem_bytes:
            return
        evicted = self.cursors.evict_for_memory(
            self.max_mem_bytes, min_idle_s=self.mem_evict_idle_s
        )
        if evicted:
            with self._metrics_lock:
                self._mem_evicted += evicted
        live = self.cursors.live_mem_bytes()
        if live < self.max_mem_bytes:
            return
        with self._metrics_lock:
            self._mem_rejected += 1
        raise MemoryPressureError(
            f"server memory watermark reached ({live} accounted bytes live "
            f">= {self.max_mem_bytes}); close or drain a cursor first"
        )

    def _retire(self, cursor) -> None:
        """Fold a closing/evicted cursor's work into server aggregates."""
        self.counters.merge(cursor.counters)
        self._fold_profile(getattr(cursor, "profile", None), cursor.engine)
        self._fold_memory(getattr(cursor, "memory", None), cursor.engine)
        self._record_qerror(cursor)

    def _fold_profile(
        self, profile: Optional[DelayProfile], engine: str
    ) -> None:
        """Fold one quiescent delay profile into the per-engine aggregate
        and the registry's delay/TTF histogram families (each profile is
        folded exactly once, so nothing is double counted)."""
        if profile is None or not profile.streams:
            return
        name = profile.engine or engine
        with self._delay_lock:
            aggregate = self.delay_profiles.get(name)
            if aggregate is None:
                aggregate = self.delay_profiles[name] = DelayProfile(name)
            aggregate.merge(profile)
        self._delay_metric.labels(engine=name).merge_histogram(profile.delay)
        self._ttf_metric.labels(engine=name).merge_histogram(profile.ttf)

    def _fold_memory(
        self, memory: Optional[MemoryProfile], engine: str
    ) -> None:
        """Fold one retiring cursor's space profile into the per-engine
        aggregate and observe its peak in the byte histogram.

        Unlike time, memory is not additive across cursors: the aggregate
        keeps *maxima* of live/peak (the profile's own merge semantics),
        and the peak *distribution* lives in ``repro_mem_peak_bytes`` —
        one observation per retired cursor."""
        if memory is None or not memory.touched:
            return
        name = memory.engine or engine
        with self._delay_lock:
            aggregate = self.memory_profiles.get(name)
            if aggregate is None:
                aggregate = self.memory_profiles[name] = MemoryProfile(name)
            aggregate.merge(memory)
        self._mem_metric.labels(engine=name).observe(float(memory.peak_bytes))

    def _record_qerror(self, cursor) -> None:
        """Planner feedback: Q-error of the routed plan's cardinality
        estimate against the rows the cursor actually produced.

        Recorded only when the enumeration ran dry below its LIMIT — a
        truncated or abandoned stream says nothing about the statement's
        true cardinality.  Labeled by the parameterized template's digest
        so every instantiation of one shape shares a series."""
        estimate = getattr(cursor, "estimate", None)
        template = getattr(cursor, "template", None)
        if estimate is None or template is None:
            return
        if not getattr(cursor.stream, "exhausted", False):
            return
        emitted = cursor.emitted
        limit = getattr(cursor, "limit", None)
        if limit is not None and emitted >= limit:
            return
        self._qerror_metric.labels(template=sql_hash(template)).observe(
            q_error(estimate, emitted)
        )

    def explain(
        self,
        sql: str,
        engine: Optional[str] = None,
        analyze: bool = False,
        params: Optional[Sequence[Any]] = None,
    ) -> dict:
        """The routed plan as text (cached like ``query`` plans).

        With ``analyze=True`` the statement is additionally *run to
        completion* (honoring its LIMIT) and the response carries the
        EXPLAIN ANALYZE report (:mod:`repro.obs.analyze`): per-stage and
        per-operator wall time, tuples produced, plan-cache and shard
        attribution, and the in-engine anytime-delay profile.
        """
        from repro.sql import render_explain

        if not analyze:
            entry, was_cached = self.plan(sql, engine=engine, params=params)
            return {
                "explain": render_explain(entry.compiled, entry.plan),
                "engine": entry.plan.engine,
                "plan_cached": was_cached,
                # Which data generation the plan was costed on — with the
                # versioned fingerprints this is also the newest generation
                # of every relation the statement reads.
                "version": entry.plan.snapshot_version,
            }
        from repro.obs.analyze import build_report, render_analyze

        snapshot = self.versioned.snapshot()
        start = time.perf_counter()
        entry, was_cached = self.plan(
            sql, engine=engine, db=snapshot, params=params
        )
        plan_ms = (time.perf_counter() - start) * 1000.0
        counters = Counters()
        profile = DelayProfile()
        memory = MemoryProfile()
        with tracer.span(
            "analyze.execute", engine=entry.plan.engine
        ):
            start = time.perf_counter()
            rows = 0
            for _ in execute(
                snapshot,
                entry.compiled,
                entry.plan,
                counters=counters,
                profile=profile,
                memory=memory,
            ):
                rows += 1
            execute_ms = (time.perf_counter() - start) * 1000.0
        report = build_report(
            snapshot,
            entry.compiled,
            entry.plan,
            rows=rows,
            stages_ms={
                "plan": round(plan_ms, 4),
                "execute": round(execute_ms, 4),
                "total": round(plan_ms + execute_ms, 4),
            },
            profile=profile,
            counters=counters,
            cache={"plan_cache": "hit" if was_cached else "miss"},
            memory=memory,
        )
        # The analyzed run is real engine work; it lands in the same
        # aggregates a drained cursor would.
        self.counters.merge(counters)
        self._fold_profile(profile, entry.plan.engine)
        self._fold_memory(memory, entry.plan.engine)
        # The analyzed run drained the whole stream, so the actual
        # cardinality is known exactly — unless LIMIT truncated it.
        k = entry.compiled.k
        if entry.template is not None and (k is None or rows < k):
            self._qerror_metric.labels(
                template=sql_hash(entry.template)
            ).observe(q_error(entry.plan.estimates.agm_bound, rows))
        return {
            "explain": render_analyze(report),
            "analyze": report,
            "engine": entry.plan.engine,
            "plan_cached": was_cached,
            "version": entry.plan.snapshot_version,
        }

    def mutate(self, sql: str) -> dict:
        """Commit one ``INSERT INTO`` / ``DELETE FROM`` statement.

        Publishes a new copy-on-write snapshot: cursors opened earlier
        keep draining their own snapshot untouched; queries planned
        afterwards see the new version (and re-cost, because the mutated
        relation's fingerprint changed).
        """
        if self.readonly:
            raise SqlError(
                "this server is read-only (started with --readonly); "
                "mutations are refused"
            )
        compiled = analyze_mutation(self.versioned.snapshot(), sql)
        result = apply_mutation(self.versioned, compiled)
        with self._metrics_lock:
            self._mutations += 1
        return {
            "applied": result.kind,
            "relation": result.relation,
            "rows": result.rows,
            "version": result.version,
        }

    def close(self, cursor_id: str) -> dict:
        """Explicitly free a cursor's session state."""
        cursor = self.cursors.close(cursor_id)  # raises UnknownCursorError
        self._retire(cursor)
        return {
            "closed": cursor_id,
            "emitted": cursor.emitted,
            "results_emitted": cursor.emitted,
        }

    def hello(self, frames: str = "json") -> dict:
        """Capability echo for the ``hello`` op.

        The TCP layer intercepts ``hello`` in its read loop (framing is
        transport state) and answers with its own frame limit; this
        in-process fallback reports the negotiation result with no
        framing to actually switch.
        """
        return {
            "frames": frames,
            "protocol": protocol.PROTOCOL_VERSION,
            "pipelining": True,
            "max_frame_bytes": None,
        }

    def batch(self, requests: list) -> dict:
        """Dispatch a list of sub-requests in order, on one turn.

        Each sub-request runs through the full :meth:`handle` pipeline —
        validation, tracing, per-op metrics, SLO accounting — so a batch
        of N requests is indistinguishable from N pipelined requests
        except for the single round trip.  A failing sub-request yields
        its error response in place; the rest of the batch still runs.
        """
        return {
            "responses": [self.handle(request) for request in requests]
        }

    def stats(self) -> dict:
        """Observability: caches, cursors, service metrics, RAM-model work."""
        with self._metrics_lock:
            metrics = {
                "queries": self._queries,
                "fetches": self._fetches,
                "rows_served": self._rows_served,
                "mutations": self._mutations,
                "requests": self._requests,
                "errors": self._errors,
            }
        snapshot = self.versioned.snapshot()
        return {
            "version": protocol.PROTOCOL_VERSION,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "relations": snapshot.names(),
            "total_tuples": snapshot.total_tuples(),
            "workers": self.workers,
            "readonly": self.readonly,
            "database": self.versioned.info(),
            **metrics,
            "plan_cache": self.plan_cache.info(),
            "stats_cache": self.stats_cache.info(),
            "cursors": self.cursors.stats(),
            "counters": self.counters.snapshot(),
            "op_latency_ms": self._op_latency_summary(),
            "delay_profiles": self.delay_summaries(),
            "memory": self.memory_stats(),
            "tracer": tracer.info(),
            "event_log": (
                self.event_log.info() if self.event_log is not None else None
            ),
            "slo": self.slo(),
        }

    def _op_latency_summary(self) -> dict:
        """Per-op latency digests from the registry histogram family.

        Keeps the pre-registry keys (``count``/``mean``/``max``) the
        workload reporters read, and adds the percentile keys the
        fixed-bucket histogram makes possible.
        """
        out: dict[str, dict] = {}
        for labels, child in self._op_latency.children():
            summary = child.summary()
            if not summary.get("count"):
                continue
            out[labels["op"]] = {
                "count": summary["count"],
                "mean": summary["mean_ms"],
                "max": summary["max_ms"],
                "p50_ms": summary["p50_ms"],
                "p95_ms": summary["p95_ms"],
                "p99_ms": summary["p99_ms"],
            }
        return out

    def delay_summaries(self) -> dict:
        """Per-engine anytime-delay digests (TTF / TT(k) / delay)."""
        with self._delay_lock:
            return {
                engine: profile.summary()
                for engine, profile in self.delay_profiles.items()
            }

    def memory_stats(self) -> dict:
        """The ``stats`` op's memory section: live bytes vs watermark,
        pressure counters, and per-engine peak profiles."""
        with self._metrics_lock:
            rejected, evicted = self._mem_rejected, self._mem_evicted
        with self._delay_lock:
            profiles = {
                engine: profile.summary()
                for engine, profile in self.memory_profiles.items()
            }
        return {
            "live_bytes": self.cursors.live_mem_bytes(),
            "watermark_bytes": self.max_mem_bytes,
            "pressure_rejections": rejected,
            "pressure_evictions": evicted,
            "profiles": profiles,
        }

    def metrics(self, format: str = "prometheus") -> dict:
        """The unified metrics registry, rendered for export."""
        if format == "json":
            return {"format": "json", "metrics": self.registry.to_json()}
        return {
            "format": "prometheus",
            "content_type": "text/plain; version=0.0.4; charset=utf-8",
            "metrics": self.registry.render_prometheus(),
        }

    def trace(
        self, trace_id: Optional[str] = None, request: Any = None
    ) -> dict:
        """Look up a buffered trace by trace id or by request id.

        With neither given, returns the newest buffered traces plus the
        tracer's ring statistics (what ``repro-obs --tail`` polls).
        """
        if trace_id is not None:
            found = tracer.get(trace_id)
        elif request is not None:
            found = tracer.find_by_request(request)
        else:
            return {"recent": tracer.recent(20), "tracer": tracer.info()}
        if found is None:
            wanted = trace_id if trace_id is not None else f"request {request!r}"
            raise protocol.ProtocolError(
                f"no buffered trace for {wanted} (the ring keeps the last "
                f"{tracer.capacity} traces)",
                code=protocol.UNKNOWN_TRACE,
            )
        return {"trace": found, "rendered": render_trace_tree(found)}

    # ------------------------------------------------------------------
    # SLOs
    # ------------------------------------------------------------------
    def _slo_histogram_for(self, indicator: str) -> Optional[Histogram]:
        """The merged histogram behind one SLO indicator (latency
        indicators in ms; ``peak_mem`` in bytes)."""
        if indicator in ("ttf", "delay", "peak_mem"):
            family = {
                "ttf": self._ttf_metric,
                "delay": self._delay_metric,
                "peak_mem": self._mem_metric,
            }[indicator]
            merged: Optional[Histogram] = None
            for _labels, child in family.children():
                clone = child.copy()
                merged = clone if merged is None else merged.merge(clone)
            return merged
        for labels, child in self._op_latency.children():
            if labels.get("op") == indicator:
                return child.copy()
        return None

    def _requests_errors(self) -> tuple[int, int]:
        with self._metrics_lock:
            return (self._requests, self._errors)

    def _slo_counts(self) -> list[tuple[int, int]]:
        """Cumulative ``(total, bad)`` per configured spec (the SLO
        engine's snapshot source)."""
        return [
            spec_counts(spec, self._slo_histogram_for, self._requests_errors)
            for spec in self._slo_specs
        ]

    def slo(self) -> dict:
        """Evaluate the configured SLOs (the ``slo`` op)."""
        if self._slo_engine is None:
            return {
                "status": "ok",
                "windows_s": [],
                "slos": [],
                "specs": [],
            }
        report = self._slo_engine.evaluate()
        report["specs"] = [spec.raw for spec in self._slo_specs]
        return report

    def _collect_samples(self):
        """Pull-time gauge samples for the registry (export-time only)."""
        with self._metrics_lock:
            samples = [
                ("repro_queries_total", {}, self._queries),
                ("repro_fetches_total", {}, self._fetches),
                ("repro_rows_served_total", {}, self._rows_served),
                ("repro_mutations_total", {}, self._mutations),
                (
                    "repro_mem_pressure_rejections_total",
                    {},
                    self._mem_rejected,
                ),
                ("repro_mem_pressure_evictions_total", {}, self._mem_evicted),
            ]
        samples.append(
            ("repro_mem_live_bytes", {}, self.cursors.live_mem_bytes())
        )
        if self.max_mem_bytes is not None:
            samples.append(
                ("repro_mem_watermark_bytes", {}, self.max_mem_bytes)
            )
        samples.append(
            (
                "repro_uptime_seconds",
                {},
                round(time.monotonic() - self._started, 3),
            )
        )
        samples.append(("repro_cursors_open", {}, len(self.cursors)))
        for state in ("opened", "closed", "evicted", "rejected"):
            samples.append(
                (
                    f"repro_cursors_{state}_total",
                    {},
                    getattr(self.cursors, state),
                )
            )
        for cache_name, cache in (
            ("plan", self.plan_cache),
            ("stats", self.stats_cache),
        ):
            info = cache.info()
            labels = {"cache": cache_name}
            samples.append(("repro_cache_entries", labels, info["entries"]))
            samples.append(("repro_cache_hits_total", labels, info["hits"]))
            samples.append(
                ("repro_cache_misses_total", labels, info["misses"])
            )
        # Compiled-kernel accounting: per-engine event counters plus the
        # process-wide template cache, labeled like the other caches.
        from repro.anyk.kernels import kernel_cache_info, kernel_stats

        for engine, counts in sorted(kernel_stats().items()):
            for event, value in sorted(counts.items()):
                samples.append(
                    (
                        f"repro_kernel_{event}_total",
                        {"engine": engine},
                        value,
                    )
                )
        kernel_info = kernel_cache_info()
        kernel_labels = {"cache": "kernel"}
        samples.append(
            ("repro_cache_entries", kernel_labels, kernel_info["entries"])
        )
        samples.append(
            ("repro_cache_hits_total", kernel_labels, kernel_info["hits"])
        )
        samples.append(
            ("repro_cache_misses_total", kernel_labels, kernel_info["misses"])
        )
        for name, value in self.counters.snapshot().items():
            if isinstance(value, (int, float)):
                samples.append(("repro_engine_work", {"counter": name}, value))
        info = tracer.info()
        samples.append(("repro_traces_buffered", {}, info["buffered"]))
        samples.append(("repro_traces_dropped_total", {}, info["dropped"]))
        return samples

    def shutdown(self) -> None:
        """Close every open cursor (their work still lands in stats)."""
        for cursor in self.cursors.close_all():
            self._retire(cursor)
        if self.event_log is not None:
            self.event_log.close()

    # ------------------------------------------------------------------
    # Protocol entry point
    # ------------------------------------------------------------------
    def handle(self, request: dict) -> dict:
        """One protocol request -> one protocol response (never raises)."""
        request_id = request.get("id")
        try:
            op = protocol.validate_request(request)
        except protocol.ProtocolError as exc:
            return protocol.error_response(request_id, exc.code, str(exc))
        deadline_ms = request.get("deadline_ms")
        deadline = (
            time.monotonic() + deadline_ms / 1000.0
            if deadline_ms is not None
            else None
        )
        started = time.perf_counter()
        # Trace propagation: a caller-supplied traceparent adopts the
        # caller's trace id and parents this request's root span under
        # the caller's span — client-side and server-side spans of one
        # request form one tree.  Malformed contexts degrade to a fresh
        # trace, never an error.
        context = parse_traceparent(request.get("trace_context"))
        root = tracer.start_trace(
            op,
            request_id=request_id,
            trace_id=context[0] if context else None,
            parent_id=context[1] if context else None,
        )
        response: dict = {}
        try:
            with root:
                response = self._dispatch(request_id, op, request, deadline)
            trace_id = getattr(root, "trace_id", None)
            if trace_id is not None:
                # Echoed on every response (success or error) so clients
                # can fetch the request's span tree via the ``trace`` op.
                response.setdefault("trace_id", trace_id)
            return response
        finally:
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            self._op_latency.labels(op=op).observe(elapsed_ms)
            error = response.get("error") if response else None
            with self._metrics_lock:
                self._requests += 1
                if error:
                    self._errors += 1
            if error:
                self._errors_metric.labels(
                    op=op, code=error.get("code", "internal")
                ).inc()
            if self.event_log is not None:
                try:
                    self.event_log.record_request(request, response, elapsed_ms)
                except Exception:
                    pass  # a full disk must not fail the request
            if self._slo_engine is not None:
                self._slo_engine.tick()

    def _dispatch(
        self,
        request_id: Any,
        op: str,
        request: dict,
        deadline: Optional[float],
    ) -> dict:
        try:
            if op == "query":
                payload = self.query(
                    request["sql"],
                    engine=request.get("engine"),
                    fetch=request.get("fetch", 0),
                    deadline=deadline,
                    params=request.get("params"),
                )
            elif op == "fetch":
                payload = self.fetch(
                    request["cursor"],
                    n=request.get("n"),
                    deadline=deadline,
                )
            elif op == "explain":
                payload = self.explain(
                    request["sql"],
                    engine=request.get("engine"),
                    analyze=bool(request.get("analyze")),
                    params=request.get("params"),
                )
            elif op == "mutate":
                payload = self.mutate(request["sql"])
            elif op == "close":
                payload = self.close(request["cursor"])
            elif op == "batch":
                payload = self.batch(request["requests"])
            elif op == "hello":
                payload = self.hello(request.get("frames", "json"))
            elif op == "metrics":
                payload = self.metrics(
                    format=request.get("format", "prometheus")
                )
            elif op == "trace":
                payload = self.trace(
                    trace_id=request.get("trace"),
                    request=request.get("request"),
                )
            elif op == "slo":
                payload = self.slo()
            else:  # "stats" — validate_request admits nothing else
                payload = self.stats()
        except protocol.ProtocolError as exc:
            return protocol.error_response(request_id, exc.code, str(exc))
        except CursorLimitError as exc:
            return protocol.error_response(
                request_id, protocol.CURSOR_LIMIT, str(exc)
            )
        except MemoryPressureError as exc:
            # A deliberate admission refusal, mapped well before the
            # Exception -> internal catch-all: memory pressure is policy,
            # never a server fault.
            return protocol.error_response(
                request_id, protocol.MEM_PRESSURE, str(exc)
            )
        except UnknownCursorError as exc:
            return protocol.error_response(
                request_id, protocol.UNKNOWN_CURSOR, str(exc)
            )
        except (SqlError, QueryError, MutationError) as exc:
            return protocol.error_response(
                request_id, protocol.SQL_ERROR, str(exc)
            )
        except Exception as exc:  # the wire must answer, not unwind
            return protocol.error_response(
                request_id,
                protocol.INTERNAL,
                f"{type(exc).__name__}: {exc}",
            )
        return protocol.ok_response(request_id, payload)
