"""The transport-agnostic query service: dicts in, dicts out.

:class:`QueryService` is the whole server minus the sockets — request
validation, plan caching, cursor lifecycle, deadlines, and error mapping
all live here, so tests and benchmarks exercise the real code paths
in-process and the TCP layer (:mod:`repro.server.tcp`) stays a dumb pipe.

The request/response shapes are those of
:mod:`repro.server.protocol`; :meth:`QueryService.handle` is the single
entry point the wire handler calls per line.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Optional

from repro.anyk.api import PausableStream, StreamClosed
from repro.data.database import Database
from repro.dynamic import MutationError, VersionedDatabase
from repro.engine.catalog import StatsCache, database_fingerprint
from repro.engine.executor import apply_mutation, execute
from repro.engine.planner import plan_compiled
from repro.query.cq import QueryError
# Submodule-style import: safe under the package's partially-initialized
# state when ``repro.server/__init__`` pulls this module in (PEP 328's
# sys.modules fallback applies to ``import a.b as b``).
import repro.server.protocol as protocol
from repro.server.cursors import (
    CursorLimitError,
    CursorManager,
    UnknownCursorError,
)
from repro.server.plancache import CachedPlan, PlanCache, normalize_sql
from repro.sql import _check_engine
from repro.sql.analyzer import analyze_mutation, analyze_statement
from repro.sql.errors import SqlError
from repro.util.counters import Counters


class QueryService:
    """Stateful any-k query service over one versioned database.

    Parameters
    ----------
    db:
        The catalog to serve — a plain :class:`Database` (wrapped in a
        fresh :class:`~repro.dynamic.VersionedDatabase` internally) or an
        existing ``VersionedDatabase`` to share with in-process writers.
        Mutations arrive through the ``mutate`` op and publish
        copy-on-write snapshots: open cursors keep draining the exact
        snapshot they were planned on, new queries see the newest
        version, and per-version fingerprints invalidate stale plan and
        statistics cache entries while untouched relations keep theirs.
    max_cursors:
        Admission limit on concurrently open cursors.
    plan_cache_size / stats_cache_size:
        LRU capacities of the plan cache and the cached-stats catalog.
    default_batch:
        Rows per ``fetch`` when the request does not say.
    idle_evict_s:
        Idle age beyond which a cursor may be evicted under admission
        pressure (None: never evict, reject instead).
    workers:
        Partition-parallelism budget offered to the router per query
        (``repro-serve --workers``).  The router still declines sharding
        for small inputs and unshardable shapes; cursors over merged
        parallel streams pause/resume/evict exactly like serial ones.
    readonly:
        Refuse ``mutate`` requests with a clean ``sql_error``
        (``repro-serve --readonly``).
    """

    def __init__(
        self,
        db: Database,
        max_cursors: int = 64,
        plan_cache_size: int = 128,
        stats_cache_size: int = 1024,
        default_batch: int = 100,
        idle_evict_s: Optional[float] = 600.0,
        workers: int = 1,
        readonly: bool = False,
    ) -> None:
        self.versioned = (
            db if isinstance(db, VersionedDatabase) else VersionedDatabase(db)
        )
        self.workers = workers
        self.readonly = readonly
        self.plan_cache = PlanCache(plan_cache_size)
        self.stats_cache = StatsCache(stats_cache_size)
        self.cursors = CursorManager(
            max_cursors,
            idle_evict_s=idle_evict_s,
            # Evicted sessions' work lands in the aggregate exactly like
            # explicitly closed ones.
            on_evict=lambda cursor: self.counters.merge(cursor.counters),
        )
        self.default_batch = default_batch
        #: Server-wide RAM-model work, aggregated from per-cursor counters
        #: when cursors close (thread-safe merge).
        self.counters = Counters()
        #: Server-side per-op wall-clock latencies (ms), observed around
        #: every dispatched request in :meth:`handle` — errors included,
        #: since a failing request still costs the server time.  The
        #: ``stats`` op reports them as ``op_latency_ms`` so load
        #: generators can split wire cost from engine cost.
        self.op_timers = Counters()
        self._started = time.monotonic()
        self._metrics_lock = threading.Lock()
        self._queries = 0
        self._fetches = 0
        self._rows_served = 0
        self._mutations = 0

    @property
    def db(self) -> Database:
        """The currently published snapshot (a plain, immutable
        :class:`Database`; grab it once per request and keep using that
        object for a consistent view)."""
        return self.versioned.snapshot()

    # ------------------------------------------------------------------
    # Planning (cached)
    # ------------------------------------------------------------------
    def plan(
        self,
        sql: str,
        engine: Optional[str] = None,
        db: Optional[Database] = None,
    ) -> tuple[CachedPlan, bool]:
        """The (possibly cached) compiled statement + routed plan.

        Returns ``(entry, was_cached)``.  The full pipeline — parse →
        analyze → route, including filter materialization — runs only on
        a miss; hits cost one parse (for normalization) and a dict probe.
        ``db`` pins the snapshot to plan against (defaults to the newest).

        The cache key fingerprints only the relations the statement's
        FROM list names, at their current copy-on-write versions: a
        mutation forces a miss (re-cost, re-materialize) exactly for the
        statements that read the mutated relation, while plans over
        untouched relations stay warm.
        """
        _check_engine(engine)
        normalized, statement = normalize_sql(sql)
        snapshot = db if db is not None else self.versioned.snapshot()
        referenced = frozenset(t.relation for t in statement.tables)
        fingerprint = database_fingerprint(snapshot, only=referenced)
        key = PlanCache.key(normalized, engine, fingerprint, self.workers)
        entry = self.plan_cache.lookup(key)
        if entry is not None:
            return entry, True
        compiled = analyze_statement(snapshot, sql, statement)
        routed = plan_compiled(
            snapshot,
            compiled,
            engine=engine,
            stats_cache=self.stats_cache,
            workers=self.workers,
        )
        entry = CachedPlan(compiled, routed)
        self.plan_cache.store(key, entry)
        return entry, False

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def query(
        self,
        sql: str,
        engine: Optional[str] = None,
        fetch: int = 0,
        deadline: Optional[float] = None,
    ) -> dict:
        """Open a cursor for ``sql``; optionally inline the first rows.

        The cursor holds the *paused* enumeration: nothing beyond the
        inlined prefix is computed until the next ``fetch``.
        """
        # Refuse before planning: under overload (the admission limit's
        # regime), a doomed request must not pay parse+analyze+route or
        # pollute the plan cache.  cursors.open() re-checks at the end.
        self.cursors.ensure_capacity()
        # One snapshot per request: plan and execute read the same data
        # generation even if a mutation commits mid-request, and the
        # cursor stays pinned to it for its whole lifetime.
        snapshot = self.versioned.snapshot()
        entry, was_cached = self.plan(sql, engine=engine, db=snapshot)
        session_counters = Counters()
        stream = PausableStream(
            execute(snapshot, entry.compiled, entry.plan, counters=session_counters)
        )
        cursor = self.cursors.open(
            sql=sql,
            engine=entry.plan.engine,
            columns=entry.compiled.output_columns,
            stream=stream,
            counters=session_counters,
        )
        with self._metrics_lock:
            self._queries += 1
        payload: dict[str, Any] = {
            "cursor": cursor.id,
            "columns": list(entry.compiled.output_columns),
            "engine": entry.plan.engine,
            "plan_cached": was_cached,
            # The snapshot generation the cursor is pinned to — every
            # page it ever serves drains exactly this version, which is
            # what lets a load generator replay sampled pages against a
            # serial recompute of the same generation.
            "version": snapshot.version,
            "rows": [],
            "done": False,
        }
        if fetch > 0:
            try:
                payload.update(self._fetch_into(cursor, fetch, deadline))
            except Exception:
                # The inline prefetch failed after the slot was taken; the
                # error response carries no cursor id, so an unreleased
                # slot would be unclosable and pin capacity forever.
                self._finish(cursor.id)
                raise
            if payload["done"]:
                self._finish(cursor.id)
                payload["cursor"] = None
        return payload

    def fetch(
        self,
        cursor_id: str,
        n: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> dict:
        """Resume a paused cursor for up to ``n`` more ranked results."""
        cursor = self.cursors.get(cursor_id)
        with self._metrics_lock:
            self._fetches += 1
        payload: dict[str, Any] = {"cursor": cursor_id}
        payload.update(
            self._fetch_into(cursor, n or self.default_batch, deadline)
        )
        payload["emitted"] = cursor.emitted
        if payload["done"]:
            self._finish(cursor_id)
        return payload

    def _fetch_into(
        self, cursor, n: int, deadline: Optional[float]
    ) -> dict:
        try:
            rows, done = cursor.fetch(n, deadline=deadline)
        except StreamClosed:
            # Lost the race with a concurrent close/eviction after the
            # cursor lookup: the session is gone, and saying "done" would
            # silently truncate the ranked stream.
            raise UnknownCursorError(
                f"cursor {cursor.id!r} was closed while this fetch was in "
                "flight"
            ) from None
        with self._metrics_lock:
            self._rows_served += len(rows)
        out: dict[str, Any] = {
            "rows": protocol.jsonable_rows(rows),
            "done": done,
        }
        if (
            not done
            and deadline is not None
            and len(rows) < n
            and time.monotonic() >= deadline
        ):
            out["deadline_exceeded"] = True
        return out

    def _finish(self, cursor_id: str) -> None:
        """Close a drained cursor, folding its work into the aggregate."""
        try:
            cursor = self.cursors.close(cursor_id)
        except UnknownCursorError:
            return
        self.counters.merge(cursor.counters)

    def explain(self, sql: str, engine: Optional[str] = None) -> dict:
        """The routed plan as text (cached like ``query`` plans)."""
        from repro.sql import render_explain

        entry, was_cached = self.plan(sql, engine=engine)
        return {
            "explain": render_explain(entry.compiled, entry.plan),
            "engine": entry.plan.engine,
            "plan_cached": was_cached,
            # Which data generation the plan was costed on — with the
            # versioned fingerprints this is also the newest generation
            # of every relation the statement reads.
            "version": entry.plan.snapshot_version,
        }

    def mutate(self, sql: str) -> dict:
        """Commit one ``INSERT INTO`` / ``DELETE FROM`` statement.

        Publishes a new copy-on-write snapshot: cursors opened earlier
        keep draining their own snapshot untouched; queries planned
        afterwards see the new version (and re-cost, because the mutated
        relation's fingerprint changed).
        """
        if self.readonly:
            raise SqlError(
                "this server is read-only (started with --readonly); "
                "mutations are refused"
            )
        compiled = analyze_mutation(self.versioned.snapshot(), sql)
        result = apply_mutation(self.versioned, compiled)
        with self._metrics_lock:
            self._mutations += 1
        return {
            "applied": result.kind,
            "relation": result.relation,
            "rows": result.rows,
            "version": result.version,
        }

    def close(self, cursor_id: str) -> dict:
        """Explicitly free a cursor's session state."""
        cursor = self.cursors.close(cursor_id)  # raises UnknownCursorError
        self.counters.merge(cursor.counters)
        return {"closed": cursor_id, "emitted": cursor.emitted}

    def stats(self) -> dict:
        """Observability: caches, cursors, service metrics, RAM-model work."""
        with self._metrics_lock:
            metrics = {
                "queries": self._queries,
                "fetches": self._fetches,
                "rows_served": self._rows_served,
                "mutations": self._mutations,
            }
        snapshot = self.versioned.snapshot()
        return {
            "version": protocol.PROTOCOL_VERSION,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "relations": snapshot.names(),
            "total_tuples": snapshot.total_tuples(),
            "workers": self.workers,
            "readonly": self.readonly,
            "database": self.versioned.info(),
            **metrics,
            "plan_cache": self.plan_cache.info(),
            "stats_cache": self.stats_cache.info(),
            "cursors": self.cursors.stats(),
            "counters": self.counters.snapshot(),
            "op_latency_ms": self.op_timers.timing_summary(),
        }

    def shutdown(self) -> None:
        """Close every open cursor (their work still lands in stats)."""
        for cursor in self.cursors.close_all():
            self.counters.merge(cursor.counters)

    # ------------------------------------------------------------------
    # Protocol entry point
    # ------------------------------------------------------------------
    def handle(self, request: dict) -> dict:
        """One protocol request -> one protocol response (never raises)."""
        request_id = request.get("id")
        try:
            op = protocol.validate_request(request)
        except protocol.ProtocolError as exc:
            return protocol.error_response(request_id, exc.code, str(exc))
        deadline_ms = request.get("deadline_ms")
        deadline = (
            time.monotonic() + deadline_ms / 1000.0
            if deadline_ms is not None
            else None
        )
        started = time.perf_counter()
        try:
            return self._dispatch(request_id, op, request, deadline)
        finally:
            self.op_timers.observe(
                op, (time.perf_counter() - started) * 1000.0
            )

    def _dispatch(
        self,
        request_id: Any,
        op: str,
        request: dict,
        deadline: Optional[float],
    ) -> dict:
        try:
            if op == "query":
                payload = self.query(
                    request["sql"],
                    engine=request.get("engine"),
                    fetch=request.get("fetch", 0),
                    deadline=deadline,
                )
            elif op == "fetch":
                payload = self.fetch(
                    request["cursor"],
                    n=request.get("n"),
                    deadline=deadline,
                )
            elif op == "explain":
                payload = self.explain(
                    request["sql"], engine=request.get("engine")
                )
            elif op == "mutate":
                payload = self.mutate(request["sql"])
            elif op == "close":
                payload = self.close(request["cursor"])
            else:  # "stats" — validate_request admits nothing else
                payload = self.stats()
        except CursorLimitError as exc:
            return protocol.error_response(
                request_id, protocol.CURSOR_LIMIT, str(exc)
            )
        except UnknownCursorError as exc:
            return protocol.error_response(
                request_id, protocol.UNKNOWN_CURSOR, str(exc)
            )
        except (SqlError, QueryError, MutationError) as exc:
            return protocol.error_response(
                request_id, protocol.SQL_ERROR, str(exc)
            )
        except Exception as exc:  # the wire must answer, not unwind
            return protocol.error_response(
                request_id,
                protocol.INTERNAL,
                f"{type(exc).__name__}: {exc}",
            )
        return protocol.ok_response(request_id, payload)
