"""The wire protocol: JSON requests/responses, two framings.

The default framing is JSON lines — one request per line, one response
per line, both UTF-8 JSON objects — the simplest framing that composes
with ``nc``, log files, and every language's standard library.  A client
may switch the connection to **binary framing** (a 4-byte big-endian
payload length followed by the same UTF-8 JSON payload, no newline
scanning) by sending a ``hello`` op; the server's hello *response* still
arrives in the old framing, and everything after it uses the negotiated
one.  Either way a frame larger than the server's limit
(:data:`MAX_FRAME_BYTES` by default) is answered with a
``frame_too_large`` error and the connection stays usable.

Requests may be **pipelined**: a client can write any number of requests
without waiting for responses.  Responses carry the request ``id``
precisely so pipelined clients can match them up; the async server may
complete independent requests out of order.  All requests share the
envelope::

    {"id": <any>, "op": "query" | "fetch" | "explain" | "mutate" | "close"
     | "batch" | "hello" | "stats" | "metrics" | "trace" | "slo",
     ...op fields...,
     "deadline_ms": <optional int>,
     "trace_context": <optional W3C-traceparent-style string>}

and all responses echo the id::

    {"id": <any>, "ok": true,  ...payload...}
    {"id": <any>, "ok": false, "error": {"code": "...", "message": "..."}}

Op fields (see :class:`repro.server.service.QueryService` for semantics):

``query``
    ``sql`` (required), ``engine`` (optional router override), ``fetch``
    (optional int: rows to inline in the response, default 0), ``params``
    (optional list of numbers/strings bound positionally to the
    statement's ``?`` placeholders).  The response carries ``version``,
    the snapshot generation the cursor is pinned to for its whole
    lifetime (validation harnesses replay pages against a recompute of
    exactly that generation).
``fetch``
    ``cursor`` (required), ``n`` (optional int, default server batch).
``explain``
    ``sql`` (required), ``engine`` (optional), ``params`` (optional, as
    for ``query``), ``analyze`` (optional bool: run the statement to
    completion and include the EXPLAIN ANALYZE report — per-stage/
    per-operator wall time, tuples produced, cache/shard attribution,
    and the in-engine anytime-delay profile).
``mutate``
    ``sql`` (required): one ``INSERT INTO`` / ``DELETE FROM`` statement.
    Commits a new copy-on-write snapshot; open cursors keep draining the
    snapshot they were planned on.  Responds with ``applied``,
    ``relation``, ``rows``, and the new ``version``.
``close``
    ``cursor`` (required).
``batch``
    ``requests`` (required: a list of at most :data:`MAX_BATCH` request
    objects, each a full envelope minus ``batch``/``hello`` nesting).
    Dispatches every sub-request in order on one server turn and
    responds with ``{"responses": [...]}`` — one response object per
    sub-request, order preserved.  The canonical multi-cursor fetch:
    one round trip advances any number of cursors.
``hello``
    ``frames`` (optional: ``"json"`` — the default line framing — or
    ``"binary"``).  Negotiates the connection's framing; the response
    (``{"frames": ..., "protocol": ..., "max_frame_bytes": ...}``)
    travels in the *old* framing, everything after it in the new one.
    In-process callers get the capability echo with no framing change.
``stats``
    no fields.
``metrics``
    ``format`` (optional: ``"prometheus"`` — the default, Prometheus
    text exposition — or ``"json"``).  Returns the unified metrics
    registry: request counters, cache/cursor gauges, per-op latency
    histograms, and per-engine delay/TTF histograms.
``trace``
    ``trace`` (optional: a trace id, as echoed in every response's
    ``trace_id``) or ``request`` (optional: a request envelope id).
    Returns the buffered span tree; with neither field, the newest
    buffered traces.  A trace/request id the ring no longer (or never)
    buffered answers with an ``unknown_trace`` error.
``slo``
    no fields.  Returns the server's SLO evaluation: per-spec
    multi-window burn rates and an ok/warn/page verdict each, plus the
    worst overall status.

``trace_context`` (any op) carries a W3C-traceparent-style string
(``00-<trace_id>-<parent_span_id>-01``): the server *adopts* the
caller's trace id and parents its request root span under the caller's
span, so client-side and server-side spans form one tree retrievable
via the ``trace`` op.  Malformed contexts are ignored, never an error.

``deadline_ms`` bounds row production for this request: the server stops
pulling results once the deadline passes and returns the partial batch
with ``"deadline_exceeded": true`` (the anytime property as a per-request
latency SLO).  Rows travel as ``[row_values..., weight]``-shaped pairs in
``"rows": [[row, weight], ...]`` with tuples rendered as JSON arrays.

``query``/``fetch`` responses additionally carry a ``mem`` object
(``{"live_bytes": ..., "peak_bytes": ...}``) when the server runs with
memory accounting — the cursor's accounted engine-state footprint so
far.  A server started with ``--max-mem-mb`` refuses new queries with a
``mem_pressure`` error once the summed live bytes of all open cursors
exceed the watermark and evicting idle cursors cannot free enough; the
refusal is deliberate admission control, never an ``internal`` failure.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Optional

#: Protocol revision, echoed by the ``stats`` op.  2 added pipelining,
#: ``params`` binding, and the ``batch``/``hello`` ops.
PROTOCOL_VERSION = 2

#: Default TCP port of ``repro-serve`` (overridable everywhere).
DEFAULT_PORT = 7632

#: Largest request/response frame the server accepts, in bytes (both
#: framings; ``repro-serve --max-frame-bytes`` overrides).  Oversized
#: requests are answered with ``frame_too_large``, never a hangup.
MAX_FRAME_BYTES = 1_000_000

#: Most sub-requests one ``batch`` op may carry.
MAX_BATCH = 128

#: Most values one ``params`` vector may carry.
MAX_PARAMS = 64

#: Framing names a ``hello`` op may negotiate.
FRAMES = ("json", "binary")

#: Binary framing header: 4-byte big-endian unsigned payload length.
FRAME_HEADER = struct.Struct(">I")

#: op name -> required field names.
OPS: dict[str, tuple[str, ...]] = {
    "query": ("sql",),
    "fetch": ("cursor",),
    "explain": ("sql",),
    "mutate": ("sql",),
    "close": ("cursor",),
    "batch": ("requests",),
    "hello": (),
    "stats": (),
    "metrics": (),
    "trace": (),
    "slo": (),
}

# Error codes (the machine-readable half of every failure).
BAD_REQUEST = "bad_request"
SQL_ERROR = "sql_error"
UNKNOWN_CURSOR = "unknown_cursor"
UNKNOWN_TRACE = "unknown_trace"
CURSOR_LIMIT = "cursor_limit"
MEM_PRESSURE = "mem_pressure"
FRAME_TOO_LARGE = "frame_too_large"
CLIENT_TIMEOUT = "client_timeout"
INTERNAL = "internal"


class ProtocolError(Exception):
    """A malformed request (bad JSON, missing op/fields, wrong types)."""

    def __init__(self, message: str, code: str = BAD_REQUEST) -> None:
        super().__init__(message)
        self.code = code


def encode(message: dict) -> bytes:
    """One response/request as a JSON line (newline-terminated bytes)."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> dict:
    """Parse one wire line into a request dict.

    Raises :class:`ProtocolError` on malformed JSON or a non-object
    payload — the server answers those with a ``bad_request`` error
    instead of dropping the connection.
    """
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(message).__name__}"
        )
    return message


def validate_request(request: dict) -> str:
    """Check the envelope; returns the op name.

    Field-level validation (types of ``n``, ``fetch``, ``deadline_ms``)
    also happens here so the service layer only sees well-formed input.
    """
    op = request.get("op")
    if not isinstance(op, str) or op not in OPS:
        known = ", ".join(sorted(OPS))
        raise ProtocolError(f"unknown op {op!r}; known ops: {known}")
    for name in OPS[op]:
        if name not in request:
            raise ProtocolError(f"op {op!r} requires a {name!r} field")
    if op in ("query", "explain", "mutate") and not isinstance(
        request["sql"], str
    ):
        raise ProtocolError("'sql' must be a string")
    if op in ("fetch", "close") and not isinstance(request["cursor"], str):
        raise ProtocolError("'cursor' must be a string (a cursor id)")
    # 'n' asks for rows (>= 1: an empty page would read as a timeout);
    # 'fetch' may be 0, the explicit "open the cursor, inline nothing".
    if "n" in request and (
        not isinstance(request["n"], int) or request["n"] < 1
    ):
        raise ProtocolError("'n' must be a positive integer")
    if "fetch" in request and (
        not isinstance(request["fetch"], int) or request["fetch"] < 0
    ):
        raise ProtocolError("'fetch' must be a non-negative integer")
    deadline = request.get("deadline_ms")
    if deadline is not None and (
        not isinstance(deadline, (int, float)) or deadline <= 0
    ):
        raise ProtocolError("'deadline_ms' must be a positive number")
    engine = request.get("engine")
    if engine is not None and not isinstance(engine, str):
        raise ProtocolError("'engine' must be a string engine name")
    if op == "explain" and "analyze" in request and not isinstance(
        request["analyze"], bool
    ):
        raise ProtocolError("'analyze' must be a boolean")
    if op == "metrics":
        format_ = request.get("format", "prometheus")
        if format_ not in ("prometheus", "json"):
            raise ProtocolError(
                "'format' must be 'prometheus' or 'json'"
            )
    if op == "trace" and "trace" in request and not isinstance(
        request["trace"], str
    ):
        raise ProtocolError("'trace' must be a string (a trace id)")
    if op in ("query", "explain"):
        validate_params(request.get("params"))
    if op == "batch":
        requests = request["requests"]
        if not isinstance(requests, list):
            raise ProtocolError("'requests' must be a list of request objects")
        if len(requests) > MAX_BATCH:
            raise ProtocolError(
                f"a batch carries at most {MAX_BATCH} requests, "
                f"got {len(requests)}"
            )
        for i, sub in enumerate(requests):
            if not isinstance(sub, dict):
                raise ProtocolError(
                    f"batch request {i} must be a JSON object, "
                    f"got {type(sub).__name__}"
                )
            if sub.get("op") in ("batch", "hello"):
                raise ProtocolError(
                    f"batch request {i}: {sub['op']!r} cannot nest in a batch"
                )
    if op == "hello":
        frames = request.get("frames", "json")
        if frames not in FRAMES:
            known = " or ".join(repr(f) for f in FRAMES)
            raise ProtocolError(f"'frames' must be {known}")
    context = request.get("trace_context")
    if context is not None and not isinstance(context, str):
        raise ProtocolError("'trace_context' must be a traceparent string")
    return op


def validate_params(params: Any) -> None:
    """Check a ``params`` vector: a short list of scalar values.

    Booleans are rejected explicitly — they are ``int`` subclasses in
    Python, and relations never store them, so a ``true`` in a params
    vector is a client bug better caught at the envelope.
    """
    if params is None:
        return
    if not isinstance(params, list):
        raise ProtocolError("'params' must be a list of numbers/strings")
    if len(params) > MAX_PARAMS:
        raise ProtocolError(
            f"'params' carries at most {MAX_PARAMS} values, got {len(params)}"
        )
    for i, value in enumerate(params):
        if isinstance(value, bool) or not isinstance(value, (int, float, str)):
            raise ProtocolError(
                f"params[{i}] must be a number or string, "
                f"got {type(value).__name__}"
            )


def ok_response(request_id: Any, payload: dict) -> dict:
    """Success envelope around ``payload``."""
    return {"id": request_id, "ok": True, **payload}


def error_response(request_id: Any, code: str, message: str) -> dict:
    """Failure envelope with a machine-readable code."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }


def encode_frame(message: dict) -> bytes:
    """One message in binary framing: 4-byte big-endian length + JSON."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    return FRAME_HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    """Parse one binary-frame payload into a request dict.

    Same contract as :func:`decode_line` (which additionally strips the
    newline terminator the line framing carries).
    """
    return decode_line(payload)


def jsonable_rows(rows: list) -> list:
    """``(row, weight)`` pairs as JSON-serializable nested lists.

    Weights in the lex carrier are tuples of floats; they become JSON
    arrays (and the client turns them back into tuples).
    """
    return [[list(row), _jsonable_weight(weight)] for row, weight in rows]


def _jsonable_weight(weight: Any) -> Any:
    return list(weight) if isinstance(weight, tuple) else weight
