"""The Python wire client: ``Client`` and its iterator-of-rows cursor.

One socket, synchronous request/response, a lock so the client object can
be shared across threads (each call owns the socket for one round trip).
Rows come back exactly as the library yields them — ``(row, weight)``
with ``row`` a tuple and lex weights re-tupled — so swapping a direct
:func:`repro.sql.query` call for a served one is a one-line change::

    with Client(port=port) as client:
        for row, weight in client.execute(sql, batch=50):
            ...
"""

from __future__ import annotations

import itertools
import socket
import threading
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Any, Iterator, Optional

import repro.server.protocol as protocol
from repro.obs.trace import (
    NOOP_SPAN,
    format_traceparent,
    join_traces,
    render_trace_tree,
    tracer,
)


class ServerError(Exception):
    """An error response from the server (code + human message)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class DeadlineExceeded(ServerError):
    """A per-request deadline expired before a full page was produced.

    Raised client-side by :meth:`ResultCursor.__iter__` when a fetch
    comes back *empty* under a deadline (a partial page is just yielded;
    manual :meth:`ResultCursor.fetch` callers read the
    :attr:`ResultCursor.deadline_exceeded` flag instead).
    """

    def __init__(self, message: str) -> None:
        super().__init__("deadline", message)


class ClientTimeout(ServerError):
    """The client-side read timeout expired before a response arrived.

    A *client*-enforced bound (``Client(timeout=...)``), distinct from
    the server-enforced ``deadline_ms``: the server may still be working
    on the request.  On a plain :class:`Client` the connection is closed
    (a later response would desynchronize the request/response pairing);
    a :class:`PipelinedClient` survives it, because its reader thread
    keeps draining responses by id.
    """

    def __init__(self, message: str) -> None:
        super().__init__(protocol.CLIENT_TIMEOUT, message)


class Client:
    """Context-manager client for one ``repro-serve`` endpoint.

    ``connect_timeout`` bounds the TCP connect (default 10 s);
    ``timeout`` bounds each round trip's read — when it expires the call
    raises :class:`ClientTimeout` and the connection is closed (None,
    the default, waits indefinitely).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = protocol.DEFAULT_PORT,
        timeout: Optional[float] = None,
        deadline_ms: Optional[int] = None,
        connect_timeout: Optional[float] = 10.0,
    ) -> None:
        # Client-side spans record only when the process tracer is
        # enabled (it never is for a plain wire client unless the
        # application opts in) — the connect cost then shows up as its
        # own little trace.
        connect = (
            tracer.start_trace("client.connect", host=host, port=port)
            if tracer.enabled
            else NOOP_SPAN
        )
        with connect:
            self._socket = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
            self._socket.settimeout(timeout)
            self._file = self._socket.makefile("rwb")
        self.timeout = timeout
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        #: Default per-request deadline attached to every call (None: no
        #: deadline).  Individual calls may override.
        self.deadline_ms = deadline_ms

    # ------------------------------------------------------------------
    # Round trips
    # ------------------------------------------------------------------
    def call(self, op: str, **fields: Any) -> dict:
        """One raw protocol round trip (public for protocol tinkering).

        When the process tracer is enabled, the round trip records
        client-side spans (``serialize``, ``wait``) under a
        ``client.<op>`` root and propagates the trace id to the server
        via the ``trace_context`` field — the server adopts it, so
        :meth:`trace` can show one tree spanning both sides.
        """
        if fields.get("deadline_ms") is None:
            fields.pop("deadline_ms", None)
            if self.deadline_ms is not None:
                fields["deadline_ms"] = self.deadline_ms
        request = {"id": next(self._ids), "op": op, **fields}
        root = (
            tracer.start_trace(f"client.{op}", request_id=request["id"])
            if tracer.enabled
            else NOOP_SPAN
        )
        trace_id = getattr(root, "trace_id", None)
        if trace_id is not None:
            request["trace_context"] = format_traceparent(trace_id, root.span_id)
        with root:
            with self._lock:
                try:
                    with tracer.span("serialize"):
                        payload = protocol.encode(request)
                        self._file.write(payload)
                        self._file.flush()
                    with tracer.span("wait"):
                        line = self._file.readline()
                except socket.timeout as exc:
                    # A half-read response is unrecoverable on a strict
                    # request/response socket: poison the connection so
                    # no later call pairs with this request's answer.
                    self._close_locked()
                    raise ClientTimeout(
                        f"no response to op {op!r} within "
                        f"{self.timeout}s; connection closed"
                    ) from exc
        if not line:
            raise ConnectionError("server closed the connection")
        response = protocol.decode_line(line)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServerError(
                error.get("code", protocol.INTERNAL),
                error.get("message", "unspecified server error"),
            )
        return response

    # ------------------------------------------------------------------
    # The public query API
    # ------------------------------------------------------------------
    def execute(
        self,
        sql: str,
        engine: Optional[str] = None,
        batch: int = 100,
        prefetch: Optional[int] = None,
        deadline_ms: Optional[int] = None,
        params: Optional[list] = None,
    ) -> "ResultCursor":
        """Open a server-side cursor; returns an iterable cursor.

        ``batch`` is the rows-per-``fetch`` page size; ``prefetch``
        (default: ``batch``) rows ride along inline on the ``query``
        response, saving a round trip for small results.  ``params``
        binds the statement's ``?`` placeholders positionally (numbers
        and strings).
        """
        response = self.call(
            "query",
            sql=sql,
            engine=engine,
            fetch=batch if prefetch is None else prefetch,
            deadline_ms=deadline_ms,
            params=params,
        )
        return ResultCursor(self, response, batch=batch, deadline_ms=deadline_ms)

    def explain(
        self,
        sql: str,
        engine: Optional[str] = None,
        params: Optional[list] = None,
    ) -> str:
        """The server's routed plan for ``sql``, as text."""
        return self.call("explain", sql=sql, engine=engine, params=params)[
            "explain"
        ]

    def explain_analyze(
        self,
        sql: str,
        engine: Optional[str] = None,
        params: Optional[list] = None,
    ) -> dict:
        """EXPLAIN ANALYZE on the server: runs the statement, returns the
        report dict (``analyze``) with its text rendering (``explain``)."""
        response = self.call(
            "explain", sql=sql, engine=engine, analyze=True, params=params
        )
        return {k: v for k, v in response.items() if k not in ("id", "ok")}

    def metrics(self, format: str = "prometheus"):
        """The server's unified metrics registry.

        ``format="prometheus"`` (default) returns the text exposition
        format as a string; ``format="json"`` returns a nested dict.
        """
        return self.call("metrics", format=format)["metrics"]

    def trace(
        self, trace_id: Optional[str] = None, request: Any = None
    ) -> dict:
        """A buffered trace by trace id / request id (or the newest ones).

        Every response carries a ``trace_id`` field; pass it here to get
        the request's span tree (``trace``) plus a rendered view
        (``rendered``).  With no arguments, returns ``recent`` traces.
        """
        fields: dict[str, Any] = {}
        if trace_id is not None:
            fields["trace"] = trace_id
        if request is not None:
            fields["request"] = request
        response = self.call("trace", **fields)
        out = {k: v for k, v in response.items() if k not in ("id", "ok")}
        if trace_id is not None and tracer.enabled and "trace" in out:
            # This process may hold the client half of a propagated
            # trace (connect/serialize/wait spans); present one tree.
            joined = join_traces(tracer.get(trace_id), out["trace"])
            if joined is not None and joined is not out["trace"]:
                out["trace"] = joined
                out["rendered"] = render_trace_tree(joined)
        return out

    def slo(self) -> dict:
        """The server's SLO evaluation: per-spec multi-window burn rates
        and ok/warn/page verdicts (see :mod:`repro.obs.slo`)."""
        response = self.call("slo")
        return {k: v for k, v in response.items() if k not in ("id", "ok")}

    def mutate(self, sql: str) -> dict:
        """Commit one ``INSERT INTO`` / ``DELETE FROM`` statement.

        Returns ``{"applied", "relation", "rows", "version"}`` — the new
        snapshot version the mutation published.  Cursors opened before
        the call keep streaming their own snapshot, untouched.
        """
        response = self.call("mutate", sql=sql)
        return {
            k: v for k, v in response.items() if k not in ("id", "ok")
        }

    def stats(self) -> dict:
        """Server stats: caches, cursors, metrics, RAM-model counters."""
        response = self.call("stats")
        return {k: v for k, v in response.items() if k not in ("id", "ok")}

    def close_cursor(self, cursor_id: str) -> None:
        self.call("close", cursor=cursor_id)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        finally:
            self._socket.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _wire_pair(pair: list) -> tuple[tuple, Any]:
    """A wire ``[row, weight]`` back into the library's ``(row, weight)``."""
    row, weight = pair
    return tuple(row), tuple(weight) if isinstance(weight, list) else weight


class ResultCursor:
    """Client-side view of one server cursor; iterate to stream rows.

    Fetches lazily in ``batch``-sized pages: pausing iteration pauses the
    server-side enumeration (that is the resumable-cursor contract), and
    abandoning it early costs at most one page of wasted work — call
    :meth:`close` to free the server slot immediately.
    """

    def __init__(
        self,
        client: Client,
        response: dict,
        batch: int,
        deadline_ms: Optional[int] = None,
    ) -> None:
        self._client = client
        self._batch = batch
        self._deadline_ms = deadline_ms
        self.cursor_id: Optional[str] = response.get("cursor")
        self.columns: tuple[str, ...] = tuple(response.get("columns", ()))
        self.engine: str = response.get("engine", "")
        self.plan_cached: bool = bool(response.get("plan_cached"))
        #: The snapshot version the server pinned this cursor to: every
        #: page, however late it is fetched, drains that generation.
        self.version: Optional[int] = response.get("version")
        #: The trace id of the opening request (look the span tree up via
        #: :meth:`Client.trace`); refreshed on every fetch round trip.
        self.trace_id: Optional[str] = response.get("trace_id")
        #: Cumulative results the server has emitted for this cursor
        #: (inline prefix included), updated on every round trip.
        self.results_emitted: int = int(response.get("results_emitted", 0))
        self._pending: list[tuple[tuple, Any]] = [
            _wire_pair(p) for p in response.get("rows", ())
        ]
        self._done: bool = bool(response.get("done"))
        #: True when the *last* round trip was cut short by its
        #: ``deadline_ms`` (the partial rows are still delivered).
        self.deadline_exceeded: bool = bool(
            response.get("deadline_exceeded")
        )

    def fetch(self, n: Optional[int] = None) -> list[tuple[tuple, Any]]:
        """One explicit fetch round trip (page of up to ``n`` results)."""
        if self._done or self.cursor_id is None:
            return []
        response = self._client.call(
            "fetch",
            cursor=self.cursor_id,
            n=n or self._batch,
            deadline_ms=self._deadline_ms,
        )
        self._done = bool(response.get("done"))
        self.deadline_exceeded = bool(response.get("deadline_exceeded"))
        if "results_emitted" in response:
            self.results_emitted = int(response["results_emitted"])
        if "trace_id" in response:
            self.trace_id = response["trace_id"]
        if self._done:
            self.cursor_id = None  # the server auto-closed it
        return [_wire_pair(p) for p in response.get("rows", ())]

    def __iter__(self) -> Iterator[tuple[tuple, Any]]:
        while True:
            while self._pending:
                yield self._pending.pop(0)
            if self._done:
                return
            self._pending = self.fetch()
            if not self._pending and not self._done:
                # An empty page on an open cursor only happens when the
                # request's deadline expired before the first row; each
                # retry would get its own fresh deadline, so a loaded
                # server could keep us spinning forever.  Fail loudly —
                # the caller opted into deadlines.
                raise DeadlineExceeded(
                    "fetch produced no rows within deadline_ms="
                    f"{self._deadline_ms or self._client.deadline_ms}; "
                    f"cursor {self.cursor_id} is still open and resumable"
                )
            if not self._pending and self._done:
                return

    def fetchall(self) -> list[tuple[tuple, Any]]:
        """Drain the remaining stream into a list."""
        return list(self)

    def close(self) -> None:
        """Free the server-side session (idempotent)."""
        if self.cursor_id is not None:
            self._client.close_cursor(self.cursor_id)
            self.cursor_id = None
            self._done = True

    def __repr__(self) -> str:
        state = "done" if self._done else f"open:{self.cursor_id}"
        return (
            f"ResultCursor({state}, columns={self.columns!r}, "
            f"engine={self.engine!r})"
        )


class PipelinedClient:
    """A pipelining client: many requests in flight on one socket.

    A background reader thread drains responses and completes
    per-request futures matched by envelope id, so any number of
    threads can share one connection — :meth:`submit` returns a
    :class:`concurrent.futures.Future` immediately, :meth:`call` is the
    blocking convenience around it, and :meth:`batch` packs several
    requests into a single ``batch`` round trip (the multi-cursor
    fetch).  On connect the client negotiates framing with a ``hello``
    op (``frames="binary"`` by default: length-prefixed frames skip the
    newline scan on both sides).

    Unlike :class:`Client`, a read ``timeout`` here does *not* poison
    the connection: the reader thread keeps consuming responses in
    arrival order, so a late answer completes its (abandoned) future
    harmlessly instead of desynchronizing the stream.

    The query surface mirrors :class:`Client` (``execute`` returns a
    :class:`ResultCursor`, ``mutate``/``stats``/``close_cursor`` behave
    identically), so workload drivers can treat either as a connection.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = protocol.DEFAULT_PORT,
        frames: str = "binary",
        timeout: Optional[float] = None,
        deadline_ms: Optional[int] = None,
        connect_timeout: Optional[float] = 10.0,
    ) -> None:
        self._socket = socket.create_connection(
            (host, port), timeout=connect_timeout
        )
        self._wfile = self._socket.makefile("wb")
        self._rfile = self._socket.makefile("rb")
        self.timeout = timeout
        self.deadline_ms = deadline_ms
        self._write_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[Any, "Future[dict]"] = {}
        self._ids = itertools.count(1)
        self._closed = False
        self.frames = "json"
        # Negotiate framing synchronously, before the reader thread and
        # before any pipelined traffic: the hello response is the last
        # frame in the old framing.
        self._wfile.write(
            protocol.encode({"id": 0, "op": "hello", "frames": frames})
        )
        self._wfile.flush()
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection during hello")
        response = protocol.decode_line(line)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServerError(
                error.get("code", protocol.INTERNAL),
                error.get("message", "hello failed"),
            )
        self.frames = frames
        #: The server's hello payload (protocol revision, frame limit).
        self.server_info = {
            k: v for k, v in response.items() if k not in ("id", "ok")
        }
        self._socket.settimeout(None)  # the reader blocks; calls bound waits
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-client-reader", daemon=True
        )
        self._reader.start()

    # ------------------------------------------------------------------
    # The reader thread
    # ------------------------------------------------------------------
    def _read_frame(self) -> Optional[bytes]:
        if self.frames == "binary":
            header = self._rfile.read(protocol.FRAME_HEADER.size)
            if len(header) < protocol.FRAME_HEADER.size:
                return None
            (length,) = protocol.FRAME_HEADER.unpack(header)
            payload = self._rfile.read(length)
            return payload if len(payload) == length else None
        line = self._rfile.readline()
        return line or None

    def _read_loop(self) -> None:
        error: Exception = ConnectionError("server closed the connection")
        try:
            while True:
                raw = self._read_frame()
                if raw is None:
                    break
                response = protocol.decode_line(raw)
                with self._pending_lock:
                    future = self._pending.pop(response.get("id"), None)
                if future is not None:
                    future.set_result(response)
                # else: an abandoned (timed-out) or unsolicited response
        except Exception as exc:  # decode error, socket error
            error = exc
        with self._pending_lock:
            pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    # ------------------------------------------------------------------
    # Round trips
    # ------------------------------------------------------------------
    def submit(self, op: str, **fields: Any) -> "Future[dict]":
        """Send one request without waiting; returns a response future."""
        if fields.get("deadline_ms") is None:
            fields.pop("deadline_ms", None)
            if self.deadline_ms is not None:
                fields["deadline_ms"] = self.deadline_ms
        request = {"id": next(self._ids), "op": op, **fields}
        future: "Future[dict]" = Future()
        with self._pending_lock:
            if self._closed:
                raise ConnectionError("client is closed")
            self._pending[request["id"]] = future
        if self.frames == "binary":
            data = protocol.encode_frame(request)
        else:
            data = protocol.encode(request)
        try:
            with self._write_lock:
                self._wfile.write(data)
                self._wfile.flush()
        except OSError:
            with self._pending_lock:
                self._pending.pop(request["id"], None)
            raise
        return future

    def result(self, future: "Future[dict]") -> dict:
        """Wait for a submitted request's response (the unwrap half)."""
        try:
            response = future.result(timeout=self.timeout)
        except FutureTimeout:
            raise ClientTimeout(
                f"no response within {self.timeout}s (the connection "
                "stays usable; the response will be discarded on arrival)"
            ) from None
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServerError(
                error.get("code", protocol.INTERNAL),
                error.get("message", "unspecified server error"),
            )
        return response

    def call(self, op: str, **fields: Any) -> dict:
        """One blocking round trip (over the pipelined machinery)."""
        return self.result(self.submit(op, **fields))

    def batch(self, requests: list) -> list:
        """One ``batch`` round trip: sub-requests dispatched in order.

        Each element is a dict with at least ``op``; sub-ids are
        assigned here.  Returns the per-sub-request response dicts
        (errors inline, not raised — callers inspect ``ok``).
        """
        numbered = [
            {"id": i, **request} for i, request in enumerate(requests)
        ]
        response = self.result(self.submit("batch", requests=numbered))
        return response.get("responses", [])

    # ------------------------------------------------------------------
    # The Client-compatible query surface
    # ------------------------------------------------------------------
    def execute(
        self,
        sql: str,
        engine: Optional[str] = None,
        batch: int = 100,
        prefetch: Optional[int] = None,
        deadline_ms: Optional[int] = None,
        params: Optional[list] = None,
    ) -> "ResultCursor":
        """Open a server-side cursor; returns an iterable cursor."""
        response = self.call(
            "query",
            sql=sql,
            engine=engine,
            fetch=batch if prefetch is None else prefetch,
            deadline_ms=deadline_ms,
            params=params,
        )
        return ResultCursor(self, response, batch=batch, deadline_ms=deadline_ms)

    def mutate(self, sql: str) -> dict:
        response = self.call("mutate", sql=sql)
        return {k: v for k, v in response.items() if k not in ("id", "ok")}

    def stats(self) -> dict:
        response = self.call("stats")
        return {k: v for k, v in response.items() if k not in ("id", "ok")}

    def close_cursor(self, cursor_id: str) -> None:
        self.call("close", cursor=cursor_id)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._pending_lock:
            if self._closed:
                return
            self._closed = True
        # Unblock the reader with an EOF *before* touching the file
        # objects: closing a socket makefile while another thread is
        # blocked reading it deadlocks on the file's internal lock.
        try:
            self._socket.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._reader.join(timeout=5.0)
        try:
            self._wfile.close()
            self._rfile.close()
        except OSError:
            pass
        finally:
            self._socket.close()

    def __enter__(self) -> "PipelinedClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
