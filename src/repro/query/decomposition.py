"""Decompositions of cyclic queries into acyclic ones (§3).

Every algorithm with O~(n^d + r) output-sensitive complexity follows the
same high-level recipe the tutorial describes: decompose the cyclic query
into a tree-shaped acyclic query, materialize a derived relation per tree
node, then run an acyclic algorithm (Yannakakis, or the any-k T-DP) over the
derived relations.  This module implements that recipe:

- tree decompositions of the query's primal graph via elimination orders
  (min-fill heuristic, plus exhaustive search over orders for the
  constant-size queries of the tutorial's examples);
- width measures per decomposition: tree width, generalized hypertree width
  (integral edge covers of bags) and fractional hypertree width (LP edge
  covers, :mod:`repro.query.agm`);
- :func:`decompose_to_acyclic` — materialize bag relations (with ranking
  weights combined once per original atom) and return an equivalent acyclic
  query over a derived database.

The *union of multiple trees* idea behind submodular width (PANDA; the
tutorial's O~(n^1.5 + r) 4-cycle claim) needs data-dependent heavy/light
splits and lives in :mod:`repro.anyk.cyclic` and :mod:`repro.joins.boolean`,
which reuse this module's machinery per tree.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.data.database import Database
from repro.data.relation import Relation
from repro.query.agm import fractional_edge_cover
from repro.query.cq import Atom, ConjunctiveQuery, QueryError
from repro.query.hypergraph import Hypergraph, JoinTree, gyo_reduction


@dataclass
class Bag:
    """One node of a tree decomposition: a set of variables plus the query
    atoms assigned to it (every assigned atom's variables are inside the
    bag)."""

    variables: frozenset[str]
    atom_indexes: list[int]


@dataclass
class TreeDecomposition:
    """A rooted tree decomposition of a query's primal graph."""

    query: ConjunctiveQuery
    bags: list[Bag]
    parent: list[Optional[int]]

    @property
    def width(self) -> int:
        """Tree width: max bag size minus one."""
        return max(len(bag.variables) for bag in self.bags) - 1

    def children(self) -> dict[int, list[int]]:
        """Bag index -> child bag indices."""
        kids: dict[int, list[int]] = {i: [] for i in range(len(self.bags))}
        for i, par in enumerate(self.parent):
            if par is not None:
                kids[par].append(i)
        return kids

    def fractional_hypertree_width(self) -> float:
        """max over bags of the fractional edge cover of the bag's
        variables by *all* query atoms (the fhw of this decomposition)."""
        return max(self._bag_cover(bag, fractional=True) for bag in self.bags)

    def generalized_hypertree_width(self) -> int:
        """max over bags of the integral edge cover of the bag (ghw)."""
        return max(
            int(round(self._bag_cover(bag, fractional=False)))
            for bag in self.bags
        )

    def _bag_cover(self, bag: Bag, fractional: bool) -> float:
        relevant = [
            atom for atom in self.query.atoms if atom.variable_set & bag.variables
        ]
        if not relevant:
            return 0.0
        sub = ConjunctiveQuery(
            [
                Atom(a.relation, tuple(v for v in a.variables if v in bag.variables))
                for a in relevant
                if any(v in bag.variables for v in a.variables)
            ],
            name="bagcover",
        )
        if fractional:
            return fractional_edge_cover(sub).cover_number
        # Integral: smallest number of atoms covering the bag.
        for size in range(1, len(relevant) + 1):
            for subset in itertools.combinations(relevant, size):
                covered: set[str] = set()
                for atom in subset:
                    covered |= atom.variable_set & bag.variables
                if covered >= bag.variables:
                    return float(size)
        raise QueryError(
            f"bag {set(bag.variables)} not coverable by query atoms"
        )  # pragma: no cover

    def is_valid(self) -> bool:
        """Check the tree decomposition axioms (used by tests).

        (1) every atom's variables are inside some bag; (2) for every
        variable, the bags containing it form a connected subtree.
        """
        for atom in self.query.atoms:
            if not any(atom.variable_set <= bag.variables for bag in self.bags):
                return False
        for variable in self.query.variables:
            holders = {
                i for i, bag in enumerate(self.bags) if variable in bag.variables
            }
            if not holders:
                return False
            topmost = set()
            for node in holders:
                current = node
                while (
                    self.parent[current] is not None
                    and self.parent[current] in holders
                ):
                    current = self.parent[current]
                topmost.add(current)
            if len(topmost) != 1:
                return False
        return True


# ----------------------------------------------------------------------
# Elimination-order construction
# ----------------------------------------------------------------------
def decomposition_from_order(
    query: ConjunctiveQuery, order: Sequence[str]
) -> TreeDecomposition:
    """Clique-tree construction from a variable elimination order.

    Eliminating variable v creates the bag {v} ∪ N(v) (current neighbors),
    then turns N(v) into a clique.  The bag's parent is the bag created when
    the *next* variable from the bag (in elimination order) is eliminated —
    the standard construction guaranteeing the decomposition axioms.
    """
    if set(order) != set(query.variables):
        raise QueryError("elimination order must be a permutation of variables")
    adjacency = Hypergraph(query).primal_neighbors()
    adjacency = {v: set(neighbors) for v, neighbors in adjacency.items()}
    position = {v: i for i, v in enumerate(order)}

    bag_variable_sets: list[frozenset[str]] = []
    bag_of_variable: dict[str, int] = {}
    for v in order:
        neighbors = {u for u in adjacency[v] if position[u] > position[v]}
        bag_vars = frozenset({v} | neighbors)
        bag_of_variable[v] = len(bag_variable_sets)
        bag_variable_sets.append(bag_vars)
        for a, b in itertools.combinations(neighbors, 2):
            adjacency[a].add(b)
            adjacency[b].add(a)

    parent: list[Optional[int]] = []
    for i, v in enumerate(order):
        rest = bag_variable_sets[i] - {v}
        if rest:
            successor = min(rest, key=lambda u: position[u])
            parent.append(bag_of_variable[successor])
        else:
            parent.append(None)
    # The construction can yield a forest (one root per connected
    # component); link extra roots under the last bag so downstream code
    # sees a single tree.  Cross-edges carry no shared variables, which is
    # exactly a cross product — acyclic and handled fine.
    roots = [i for i, par in enumerate(parent) if par is None]
    for extra_root in roots[:-1]:
        parent[extra_root] = roots[-1]

    bags = [Bag(variables=vs, atom_indexes=[]) for vs in bag_variable_sets]
    _assign_atoms(query, bags)
    return TreeDecomposition(query=query, bags=bags, parent=parent)


def _assign_atoms(query: ConjunctiveQuery, bags: list[Bag]) -> None:
    """Assign each atom to exactly one bag containing all its variables.

    Prefers the smallest such bag, which keeps derived relations tight.
    """
    for index, atom in enumerate(query.atoms):
        candidates = [
            (len(bag.variables), i)
            for i, bag in enumerate(bags)
            if atom.variable_set <= bag.variables
        ]
        if not candidates:
            raise QueryError(
                f"no bag covers atom {atom}; invalid decomposition"
            )  # pragma: no cover - construction guarantees a cover
        bags[min(candidates)[1]].atom_indexes.append(index)


def min_fill_order(query: ConjunctiveQuery) -> list[str]:
    """The classic min-fill elimination heuristic."""
    adjacency = Hypergraph(query).primal_neighbors()
    adjacency = {v: set(n) for v, n in adjacency.items()}
    remaining = set(query.variables)
    order: list[str] = []
    while remaining:
        best = None
        best_fill = None
        for v in sorted(remaining):
            neighbors = adjacency[v] & remaining
            fill = sum(
                1
                for a, b in itertools.combinations(sorted(neighbors), 2)
                if b not in adjacency[a]
            )
            if best_fill is None or fill < best_fill:
                best, best_fill = v, fill
        assert best is not None
        order.append(best)
        neighbors = adjacency[best] & remaining
        for a, b in itertools.combinations(neighbors, 2):
            adjacency[a].add(b)
            adjacency[b].add(a)
        remaining.remove(best)
    return order


def min_fill_decomposition(query: ConjunctiveQuery) -> TreeDecomposition:
    """Tree decomposition from the min-fill heuristic order."""
    return decomposition_from_order(query, min_fill_order(query))


def best_decomposition(
    query: ConjunctiveQuery,
    objective: Callable[[TreeDecomposition], float] | None = None,
    max_exhaustive_variables: int = 8,
) -> TreeDecomposition:
    """Best decomposition under ``objective`` (default: fhw, then width).

    Queries are constant-size in data complexity (§1), so for up to
    ``max_exhaustive_variables`` variables we search all elimination orders;
    beyond that we fall back to min-fill.
    """
    if objective is None:
        objective = lambda td: (td.fractional_hypertree_width(), td.width)
    variables = list(query.variables)
    if len(variables) > max_exhaustive_variables:
        return min_fill_decomposition(query)
    best_td: Optional[TreeDecomposition] = None
    best_score = None
    for order in itertools.permutations(variables):
        td = decomposition_from_order(query, order)
        score = objective(td)
        if best_score is None or score < best_score:
            best_td, best_score = td, score
    assert best_td is not None
    return best_td


# ----------------------------------------------------------------------
# Materializing an equivalent acyclic query
# ----------------------------------------------------------------------
@dataclass
class AcyclicRewrite:
    """Result of :func:`decompose_to_acyclic`.

    ``database`` holds one derived relation per (non-empty) bag;
    ``query`` is acyclic over those relations and equivalent to the
    original; derived tuple weights combine the original atom weights, each
    original atom counted exactly once across all bags.
    """

    database: Database
    query: ConjunctiveQuery
    join_tree: JoinTree
    decomposition: TreeDecomposition


def decompose_to_acyclic(
    db: Database,
    query: ConjunctiveQuery,
    decomposition: Optional[TreeDecomposition] = None,
    combine: Callable[[float, float], float] = lambda a, b: a + b,
) -> AcyclicRewrite:
    """Rewrite a (cyclic) query into an equivalent acyclic one.

    Each bag with assigned atoms is materialized as the full join of those
    atoms (no projection — the query is full, so every variable is output).
    Tuple weights are combined with ``combine`` (the ranking function's
    accumulation operator; defaults to sum).  Because every original atom is
    assigned to exactly one bag, every output weight is combined exactly
    once per atom, so ranked enumeration over the rewrite ranks identically
    to the original query.
    """
    query.validate(db)
    if decomposition is None:
        decomposition = best_decomposition(query)

    derived_db = Database()
    derived_atoms: list[Atom] = []
    for i, bag in enumerate(decomposition.bags):
        if not bag.atom_indexes:
            continue
        name = f"bag{i}"
        relation, variables = _materialize_bag(db, query, bag, name, combine)
        derived_db.add(relation)
        derived_atoms.append(Atom(name, tuple(variables)))
    derived_query = ConjunctiveQuery(derived_atoms, name=f"{query.name}_acyclic")

    tree = gyo_reduction(derived_query)
    if tree is None:
        # Rare: derived schemas can lose the running-intersection property
        # relative to the bags.  Collapse the whole query into one bag —
        # always acyclic, still correct, just wider (documented fallback).
        whole = Bag(
            variables=frozenset(query.variables),
            atom_indexes=list(range(len(query.atoms))),
        )
        relation, variables = _materialize_bag(db, query, whole, "bag_all", combine)
        derived_db = Database([relation])
        derived_query = ConjunctiveQuery(
            [Atom("bag_all", tuple(variables))], name=f"{query.name}_acyclic"
        )
        tree = gyo_reduction(derived_query)
        assert tree is not None
        decomposition = TreeDecomposition(
            query=query, bags=[whole], parent=[None]
        )
    return AcyclicRewrite(
        database=derived_db,
        query=derived_query,
        join_tree=tree,
        decomposition=decomposition,
    )


def _materialize_bag(
    db: Database,
    query: ConjunctiveQuery,
    bag: Bag,
    name: str,
    combine: Callable[[float, float], float],
) -> tuple[Relation, list[str]]:
    """Materialize the full join of the bag's atoms, combining weights.

    Uses Generic-Join so that a *cyclic* bag (e.g. the single bag of the
    triangle query's optimal GHD) is materialized within its AGM bound
    rather than through a possibly quadratic pairwise plan.  Imported
    lazily to avoid a module-level cycle with :mod:`repro.joins`.
    """
    from repro.joins.generic_join import evaluate as generic_join

    sub = ConjunctiveQuery(
        [query.atoms[i] for i in bag.atom_indexes], name=name
    )
    relation = generic_join(db, sub, combine=combine)
    relation.name = name
    return relation, list(sub.variables)
