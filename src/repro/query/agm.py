"""Fractional edge covers and the AGM output-size bound (§3).

Atserias, Grohe and Marx showed that the output size of a natural join is at
most ``∏_e |R_e|^{x_e}`` for any fractional edge cover ``x`` of the query
hypergraph, and that the bound is tight for the cover minimizing the
right-hand side.  Taking logarithms turns the minimization into a linear
program:

    minimize    Σ_e x_e · log |R_e|
    subject to  Σ_{e ∋ v} x_e ≥ 1   for every variable v
                x_e ≥ 0

which we solve with :func:`scipy.optimize.linprog`.  With unit relation
sizes the optimal objective is the *fractional edge cover number* ρ*(Q) —
e.g. 1.5 for the triangle query, 2 for the 4-cycle — the exponent in the
worst-case output size O(n^{ρ*}) that worst-case-optimal join algorithms
match.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy.optimize import linprog

from repro.data.database import Database
from repro.query.cq import ConjunctiveQuery, QueryError
from repro.util.lru import LruCache


@dataclass(frozen=True)
class FractionalCover:
    """Result of the fractional edge cover LP.

    ``weights[i]`` is the cover weight of atom ``i``; ``log_bound`` is the
    optimal objective Σ x_e log|R_e| (natural log), so the AGM bound itself
    is ``exp(log_bound)``.
    """

    weights: tuple[float, ...]
    log_bound: float

    @property
    def bound(self) -> float:
        """The AGM bound ∏ |R_e|^{x_e}."""
        return math.exp(self.log_bound)

    @property
    def cover_number(self) -> float:
        """Σ x_e — equals ρ*(Q) when all relation sizes are equal."""
        return sum(self.weights)


#: Memo for solved cover LPs.  The LP depends only on the query's
#: hyperedge structure and the per-atom objective coefficients, both tiny
#: and hashable — and the same structures recur constantly (every
#: decomposition candidate of an exhaustive `best_decomposition` search,
#: every EXPLAIN of the same query shape), so caching turns the planner's
#: and the width machinery's hot path into cache probes (the shared
#: bounded LRU also backing the server's plan and stats caches).
_COVER_CACHE = LruCache(65536)


def fractional_edge_cover(
    query: ConjunctiveQuery, sizes: Optional[Sequence[int]] = None
) -> FractionalCover:
    """Solve the fractional edge cover LP for ``query`` (memoized).

    ``sizes[i]`` is the cardinality of atom i's relation; omitted sizes
    default to Euler's number so the objective equals the cover number
    (log e = 1), which is convenient for computing ρ*(Q) directly.
    """
    atom_count = len(query.atoms)
    if sizes is None:
        logs = [1.0] * atom_count
    else:
        if len(sizes) != atom_count:
            raise QueryError(
                f"{len(sizes)} sizes supplied for {atom_count} atoms"
            )
        # log(max(2, .)) keeps empty/singleton relations from producing a
        # degenerate all-zero objective; the bound stays valid (it only
        # grows) and the LP stays bounded.
        logs = [math.log(max(2, s)) for s in sizes]

    # Canonical key: variable names are irrelevant to the LP, only which
    # atoms share them — encode each variable as the (sorted) tuple of
    # atom indices containing it, deduplicated.
    incidence = frozenset(
        tuple(
            i for i, atom in enumerate(query.atoms) if v in atom.variable_set
        )
        for v in query.variables
    )
    key = (incidence, atom_count, tuple(logs))
    cached = _COVER_CACHE.get(key)
    if cached is not None:
        return cached

    # One constraint per variable: sum of x_e over atoms containing it >= 1.
    rows = []
    for variable in query.variables:
        row = [
            -1.0 if variable in atom.variable_set else 0.0
            for atom in query.atoms
        ]
        rows.append(row)
    a_ub = np.array(rows)
    b_ub = -np.ones(len(query.variables))
    result = linprog(
        c=np.array(logs),
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=[(0, None)] * atom_count,
        method="highs",
    )
    if not result.success:  # pragma: no cover - LP is always feasible
        raise RuntimeError(f"edge cover LP failed: {result.message}")
    cover = FractionalCover(
        weights=tuple(float(x) for x in result.x),
        log_bound=float(result.fun),
    )
    _COVER_CACHE.put(key, cover)
    return cover


def fractional_cover_number(query: ConjunctiveQuery) -> float:
    """ρ*(Q): the optimal fractional edge cover with unit weights."""
    return fractional_edge_cover(query).cover_number


def agm_bound(db: Database, query: ConjunctiveQuery) -> float:
    """The AGM bound on ``query``'s output size over ``db``.

    Any database instance satisfies ``|output| <= agm_bound`` (tested as an
    invariant in the suite); for each query there are instances that meet
    it, which is why worst-case-optimal join algorithms run in
    O~(agm_bound).
    """
    query.validate(db)
    sizes = [len(db[atom.relation]) for atom in query.atoms]
    if any(s == 0 for s in sizes):
        return 0.0
    cover = fractional_edge_cover(query, sizes)
    return cover.bound


def integral_cover_number(query: ConjunctiveQuery) -> int:
    """Smallest number of atoms covering all variables (for comparison).

    The gap between the integral and fractional cover numbers is exactly
    what separates binary-join-style reasoning from the AGM bound; the
    benchmarks report both.  Exhaustive search — query size is a constant
    in data complexity (§1's prerequisites discussion).
    """
    from itertools import combinations

    all_vars = set(query.variables)
    atoms = query.atoms
    for size in range(1, len(atoms) + 1):
        for subset in combinations(range(len(atoms)), size):
            covered: set[str] = set()
            for index in subset:
                covered |= atoms[index].variable_set
            if covered == all_vars:
                return size
    raise QueryError("no atom subset covers all variables")  # pragma: no cover
