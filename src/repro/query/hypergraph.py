"""Query hypergraphs, GYO reduction, acyclicity, join trees.

The hypergraph of a conjunctive query has the query variables as vertices
and one hyperedge per atom (§3 of the tutorial).  α-acyclicity — the
property that makes Yannakakis' O~(n + r) algorithm applicable — is decided
by the classic GYO (Graham / Yu–Özsoyoğlu) ear-removal procedure, which as a
by-product yields a *join tree*: a tree over the atoms such that for every
variable, the atoms containing it form a connected subtree (the running
intersection property).

The join tree is the shared substrate of half this library: Yannakakis'
algorithm runs semijoins along its edges, and the any-k T-DP of Part 3 turns
it into a dynamic program whose solutions are the query answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.query.cq import Atom, ConjunctiveQuery, QueryError


class Hypergraph:
    """Vertices = query variables, hyperedges = atom variable sets."""

    def __init__(self, query: ConjunctiveQuery) -> None:
        self.query = query
        self.vertices: tuple[str, ...] = query.variables
        self.edges: tuple[frozenset[str], ...] = tuple(
            atom.variable_set for atom in query.atoms
        )

    def incident_edges(self, variable: str) -> list[int]:
        """Indices of atoms whose variable set contains ``variable``."""
        return [i for i, edge in enumerate(self.edges) if variable in edge]

    def primal_neighbors(self) -> dict[str, set[str]]:
        """The primal (Gaifman) graph: variables co-occurring in an atom."""
        adjacency: dict[str, set[str]] = {v: set() for v in self.vertices}
        for edge in self.edges:
            for u in edge:
                adjacency[u] |= edge - {u}
        return adjacency

    def is_connected(self) -> bool:
        """True if the hypergraph (as a primal graph) is connected."""
        if not self.vertices:
            return True
        adjacency = self.primal_neighbors()
        seen = {self.vertices[0]}
        frontier = [self.vertices[0]]
        while frontier:
            node = frontier.pop()
            for neighbor in adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self.vertices)


@dataclass
class JoinTree:
    """A rooted join tree over atom indices of a query.

    ``parent[root] is None``; every other atom points to its tree parent.
    ``order`` lists atoms root-first (BFS), which is the stage order used by
    the T-DP and the top-down pass of Yannakakis.
    """

    query: ConjunctiveQuery
    root: int
    parent: dict[int, Optional[int]]
    children: dict[int, list[int]] = field(default_factory=dict)
    order: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.children:
            self.children = {i: [] for i in self.parent}
            for node, par in self.parent.items():
                if par is not None:
                    self.children[par].append(node)
        if not self.order:
            self.order = []
            frontier = [self.root]
            while frontier:
                node = frontier.pop(0)
                self.order.append(node)
                frontier.extend(self.children[node])

    def edge_join_variables(self, child: int) -> frozenset[str]:
        """Variables shared between ``child`` and its parent atom."""
        par = self.parent[child]
        if par is None:
            return frozenset()
        return (
            self.query.atoms[child].variable_set
            & self.query.atoms[par].variable_set
        )

    def leaves(self) -> list[int]:
        """Atom indices with no children."""
        return [node for node, kids in self.children.items() if not kids]

    def satisfies_running_intersection(self) -> bool:
        """Check the defining property of join trees (used by tests).

        For every variable, the set of tree nodes whose atom contains it
        must induce a connected subtree.
        """
        for variable in self.query.variables:
            holders = {
                i
                for i, atom in enumerate(self.query.atoms)
                if variable in atom.variable_set
            }
            if not holders:
                continue
            # Walk up from each holder; the meeting structure is connected
            # iff climbing from any holder stays within holders until the
            # unique topmost holder is reached.
            topmost = set()
            for node in holders:
                current = node
                while (
                    self.parent[current] is not None
                    and self.parent[current] in holders
                ):
                    current = self.parent[current]
                topmost.add(current)
            if len(topmost) != 1:
                return False
        return True


def gyo_reduction(query: ConjunctiveQuery) -> Optional[JoinTree]:
    """GYO ear removal.  Returns a join tree, or ``None`` if cyclic.

    An atom is an *ear* if every variable it shares with the rest of the
    query is contained in a single other atom (the *witness*, which becomes
    its join-tree parent).  Repeatedly removing ears empties the atom list
    exactly when the query is α-acyclic.
    """
    atom_count = len(query.atoms)
    alive = set(range(atom_count))
    parent: dict[int, Optional[int]] = {}
    removal_order: list[int] = []

    while len(alive) > 1:
        ear = None
        witness = None
        for candidate in sorted(alive):
            cand_vars = query.atoms[candidate].variable_set
            others = [i for i in alive if i != candidate]
            shared = cand_vars & query.variables_of(others)
            # A witness must contain all variables the candidate shares
            # with the remainder of the query.
            for other in others:
                if shared <= query.atoms[other].variable_set:
                    ear, witness = candidate, other
                    break
            if ear is not None:
                break
        if ear is None:
            return None  # no ear: the query is cyclic
        parent[ear] = witness
        removal_order.append(ear)
        alive.remove(ear)

    root = next(iter(alive))
    parent[root] = None
    return JoinTree(query=query, root=root, parent=parent)


def is_acyclic(query: ConjunctiveQuery) -> bool:
    """True iff the query is α-acyclic (GYO reduction succeeds)."""
    return gyo_reduction(query) is not None


def join_tree_or_raise(query: ConjunctiveQuery) -> JoinTree:
    """Join tree of an acyclic query; raises :class:`QueryError` if cyclic."""
    tree = gyo_reduction(query)
    if tree is None:
        raise QueryError(
            f"query {query.name!r} is cyclic; use a decomposition "
            "(repro.query.decomposition) to rewrite it first"
        )
    return tree


def is_free_connex(query: ConjunctiveQuery, free_variables: Iterable[str]) -> bool:
    """True iff the query is free-connex acyclic w.r.t. ``free_variables``.

    A CQ with free (output) variables F is *free-connex* when both the query
    itself and the hypergraph extended with one hyperedge over F are
    α-acyclic — the condition under which enumeration of the projection
    achieves constant delay after linear preprocessing (Bagan, Durand,
    Grandjean).  The engine router uses this to annotate projection plans;
    full queries (F = all variables) reduce to plain acyclicity.
    """
    free = tuple(dict.fromkeys(free_variables))
    unknown = set(free) - set(query.variables)
    if unknown:
        raise QueryError(f"free variables {sorted(unknown)} not in the query")
    if gyo_reduction(query) is None:
        return False
    if set(free) == set(query.variables) or not free:
        return True
    extended = ConjunctiveQuery(
        list(query.atoms) + [Atom("__free__", free)], name=f"{query.name}_ext"
    )
    return gyo_reduction(extended) is not None


def connected_components(query: ConjunctiveQuery) -> list[list[int]]:
    """Atom indices grouped by connected component of the hypergraph."""
    remaining = set(range(len(query.atoms)))
    components: list[list[int]] = []
    while remaining:
        seed = min(remaining)
        component = {seed}
        frontier = [seed]
        while frontier:
            node = frontier.pop()
            node_vars = query.atoms[node].variable_set
            for other in list(remaining - component):
                if node_vars & query.atoms[other].variable_set:
                    component.add(other)
                    frontier.append(other)
        components.append(sorted(component))
        remaining -= component
    return components
