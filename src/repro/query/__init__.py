"""Query model: conjunctive queries, hypergraphs, bounds, decompositions.

The tutorial works with *full conjunctive queries* (natural joins, no
projection): graph patterns like triangles and 4-cycles are self-joins over
an edge relation (§1).  This package provides:

- :mod:`repro.query.cq` — the query AST and builders for the tutorial's
  running examples (paths, stars, triangles, length-k cycles);
- :mod:`repro.query.hypergraph` — query hypergraphs, GYO reduction,
  acyclicity testing and join-tree extraction (the substrate for Yannakakis
  and the any-k T-DP);
- :mod:`repro.query.agm` — fractional edge covers and the AGM output-size
  bound (§3) via linear programming;
- :mod:`repro.query.decomposition` — tree decompositions / generalized
  hypertree decompositions for cyclic queries, plus the heavy/light
  union-of-trees constructions behind the submodular-width O(n^1.5)
  4-cycle result the tutorial highlights.
"""

from repro.query.cq import (
    Atom,
    ConjunctiveQuery,
    QueryError,
    cycle_query,
    path_query,
    star_query,
    triangle_query,
)
from repro.query.hypergraph import Hypergraph, JoinTree, gyo_reduction

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "QueryError",
    "path_query",
    "star_query",
    "triangle_query",
    "cycle_query",
    "Hypergraph",
    "JoinTree",
    "gyo_reduction",
]
