"""Full conjunctive queries (natural joins) and standard query builders.

A query is a list of :class:`Atom` objects; each atom names a relation in
the database and binds that relation's columns to query variables.  Repeating
a relation name across atoms expresses a self-join, which is how all the
tutorial's graph-pattern queries (triangles, 4-cycles, paths in a graph) are
written over a single edge relation E(src, dst).

Queries here are *full*: every variable appears in the output.  This matches
the setting of the tutorial's Part 3 (ranked enumeration for full conjunctive
queries); projections change the complexity landscape (§1) and are out of
scope, as they are for most of the work the tutorial surveys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.data.database import Database


class QueryError(ValueError):
    """Raised for queries inconsistent with themselves or a database."""


@dataclass(frozen=True)
class Atom:
    """One relational atom: ``relation(variables...)``.

    The same variable may repeat within an atom (e.g. ``E(x, x)`` for
    self-loops); join semantics then require equal column values.
    """

    relation: str
    variables: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.variables:
            raise QueryError(f"atom over {self.relation!r} has no variables")
        object.__setattr__(self, "variables", tuple(self.variables))

    @property
    def variable_set(self) -> frozenset[str]:
        """The set of distinct variables in this atom."""
        return frozenset(self.variables)

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(self.variables)})"


class ConjunctiveQuery:
    """A full conjunctive query: the natural join of its atoms.

    Output schema: all distinct variables, in order of first appearance.
    The output weight of a result is the ranking-function combination of
    the weights of the participating input tuples (one per atom).
    """

    def __init__(self, atoms: Iterable[Atom], name: str = "Q") -> None:
        self.atoms: tuple[Atom, ...] = tuple(atoms)
        self.name = name
        if not self.atoms:
            raise QueryError("query must have at least one atom")
        seen: list[str] = []
        for atom in self.atoms:
            for variable in atom.variables:
                if variable not in seen:
                    seen.append(variable)
        self.variables: tuple[str, ...] = tuple(seen)

    def __len__(self) -> int:
        return len(self.atoms)

    def __str__(self) -> str:
        body = ", ".join(str(atom) for atom in self.atoms)
        return f"{self.name}({', '.join(self.variables)}) :- {body}"

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({str(self)!r})"

    def validate(self, db: Database) -> None:
        """Check every atom against the catalog (existence and arity)."""
        for atom in self.atoms:
            if atom.relation not in db:
                raise QueryError(
                    f"query {self.name!r} references unknown relation "
                    f"{atom.relation!r}"
                )
            relation = db[atom.relation]
            if len(atom.variables) != relation.arity:
                raise QueryError(
                    f"atom {atom} has {len(atom.variables)} variables but "
                    f"relation {atom.relation!r} has arity {relation.arity}"
                )

    def atom_variable_positions(self, atom_index: int) -> dict[str, list[int]]:
        """Variable -> column positions within the given atom."""
        atom = self.atoms[atom_index]
        positions: dict[str, list[int]] = {}
        for pos, variable in enumerate(atom.variables):
            positions.setdefault(variable, []).append(pos)
        return positions

    def variables_of(self, atom_indexes: Iterable[int]) -> frozenset[str]:
        """Union of variable sets of the given atoms."""
        out: set[str] = set()
        for index in atom_indexes:
            out |= self.atoms[index].variable_set
        return frozenset(out)


# ----------------------------------------------------------------------
# Builders for the tutorial's running example queries
# ----------------------------------------------------------------------
def path_query(length: int, name: str = "Path") -> ConjunctiveQuery:
    """R1(A1,A2) ⋈ R2(A2,A3) ⋈ ... — the acyclic chain query."""
    if length < 1:
        raise QueryError("path length must be >= 1")
    atoms = [
        Atom(f"R{i}", (f"A{i}", f"A{i + 1}")) for i in range(1, length + 1)
    ]
    return ConjunctiveQuery(atoms, name=name)


def star_query(arms: int, name: str = "Star") -> ConjunctiveQuery:
    """R1(A0,A1) ⋈ ... ⋈ R_arms(A0,A_arms) — the acyclic star query."""
    if arms < 1:
        raise QueryError("star must have >= 1 arms")
    atoms = [Atom(f"R{i}", ("A0", f"A{i}")) for i in range(1, arms + 1)]
    return ConjunctiveQuery(atoms, name=name)


def triangle_query(
    relations: Sequence[str] = ("R", "S", "T"), name: str = "Triangle"
) -> ConjunctiveQuery:
    """R(A,B) ⋈ S(B,C) ⋈ T(C,A) — the canonical cyclic query of §3."""
    if len(relations) != 3:
        raise QueryError("triangle query needs exactly 3 relation names")
    r, s, t = relations
    atoms = [Atom(r, ("A", "B")), Atom(s, ("B", "C")), Atom(t, ("C", "A"))]
    return ConjunctiveQuery(atoms, name=name)


def cycle_query(
    length: int, relation: str = "E", name: str | None = None
) -> ConjunctiveQuery:
    """Length-``length`` cycle as a self-join over an edge relation.

    E(x1,x2) ⋈ E(x2,x3) ⋈ ... ⋈ E(x_length, x1) — for ``length == 4`` this
    is the introduction's "top-k lightest 4-cycles" query.  Degenerate
    cycles (repeated nodes) are included, matching the paper's footnote 2.
    """
    if length < 2:
        raise QueryError("cycle length must be >= 2")
    atoms = [
        Atom(relation, (f"x{i}", f"x{(i % length) + 1}"))
        for i in range(1, length + 1)
    ]
    return ConjunctiveQuery(atoms, name=name or f"Cycle{length}")


def path_graph_query(
    length: int, relation: str = "E", name: str | None = None
) -> ConjunctiveQuery:
    """Length-``length`` path as a self-join over an edge relation."""
    if length < 1:
        raise QueryError("path length must be >= 1")
    atoms = [
        Atom(relation, (f"x{i}", f"x{i + 1}")) for i in range(1, length + 1)
    ]
    return ConjunctiveQuery(atoms, name=name or f"GraphPath{length}")
