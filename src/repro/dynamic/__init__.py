"""Dynamic data: versioned databases with snapshot-isolated readers.

``repro.dynamic`` lets the ranked-enumeration stack serve *changing*
data without breaking the any-k contract.  A
:class:`VersionedDatabase` publishes immutable copy-on-write snapshots
with monotonically increasing version ids; mutations
(:class:`Insert` / :class:`Delete`, or SQL ``INSERT INTO`` /
``DELETE FROM`` through :func:`repro.sql.mutate`) build the next
snapshot without touching the previous one, so every open cursor keeps
enumerating the exact generation it was planned on while new queries see
the newest data.  Version ids flow into the engine catalog's
fingerprints, which is what keys the plan cache and
:class:`~repro.engine.catalog.StatsCache` invalidation.

Quickstart::

    from repro.dynamic import VersionedDatabase
    import repro.sql

    vdb = VersionedDatabase(db)
    stream = repro.sql.query(vdb.snapshot(), "SELECT ... LIMIT 100")
    vdb.insert("E", [(1, 2)], weights=[0.5])      # new snapshot, version 2
    repro.sql.mutate(vdb, "DELETE FROM E WHERE src = 1")   # version 3
    list(stream)   # still exactly the version-1 ranked stream
"""

from repro.dynamic.mutations import (
    Delete,
    Insert,
    Mutation,
    MutationError,
    MutationResult,
    insert,
)
from repro.dynamic.versioned import VersionedDatabase

__all__ = [
    "Delete",
    "Insert",
    "Mutation",
    "MutationError",
    "MutationResult",
    "VersionedDatabase",
    "insert",
]
