"""Versioned databases: copy-on-write snapshots under mutation.

The any-k algorithms assume a static instance, but a serving workload
mutates data while long-lived ranked cursors are still draining.  This
layer reconciles the two with the oldest trick in the book — **snapshot
isolation via copy-on-write**:

- A :class:`VersionedDatabase` holds one *published snapshot*: an
  ordinary :class:`~repro.data.database.Database` whose relations are
  treated as immutable (the library-wide contract the plan cache and the
  enumeration engines already rely on).
- Applying a mutation never touches a published relation object.  It
  builds a *new* :class:`~repro.data.relation.Relation` for the one
  relation the mutation names (rows shared where possible), stamps it
  with the next monotonically increasing version id, wraps it in a new
  :class:`Database` that **shares** every untouched relation object, and
  publishes that as the new snapshot.
- Readers grab :meth:`snapshot` once and keep enumerating against it for
  as long as they like: every open cursor sees the exact generation it
  was planned on — never truncated, never contaminated by concurrent
  writes — while new queries plan against the newest snapshot.

Version ids feed the engine catalog's fingerprints
(:func:`repro.engine.catalog.database_fingerprint`): a mutation bumps the
touched relation's version, so stale plans and statistics *miss* their
caches even when cardinalities happen to match (delete one row, insert
another), while untouched relations keep their cached entries.  There is
deliberately no "re-cost threshold": *every* delta re-costs the affected
queries on next planning, because a fingerprint that sometimes matched
stale data would silently serve wrong plans.

Thread-safety: mutations serialize on a lock; reading the published
snapshot is a single attribute load (atomic), so readers never block
writers and vice versa.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional

from repro.data.database import Database
from repro.data.relation import Relation, SchemaError
from repro.dynamic.mutations import (
    Delete,
    Insert,
    Mutation,
    MutationError,
    MutationResult,
)


class VersionedDatabase:
    """A mutable catalog publishing immutable, versioned snapshots.

    Parameters
    ----------
    db:
        The initial contents.  Copied by default (relations get fresh
        row lists; row tuples are shared) so later in-place edits to the
        caller's objects cannot leak into published snapshots — pass
        ``copy=False`` only when the caller hands over ownership.
    """

    def __init__(self, db: Optional[Database] = None, copy: bool = True) -> None:
        base = (db.copy() if copy else db) if db is not None else Database()
        self._version = 1
        base.version = self._version
        self._snapshot = base
        self._lock = threading.Lock()
        self._mutations = 0
        self._inserted_rows = 0
        self._deleted_rows = 0

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """The version id of the currently published snapshot."""
        return self._snapshot.version  # type: ignore[return-value]

    def snapshot(self) -> Database:
        """The current snapshot — immutable, version-stamped, safe to
        enumerate for arbitrarily long after later mutations."""
        return self._snapshot

    def relation_version(self, name: str) -> int:
        """The version id of one relation's current generation (0 when it
        has never been mutated through this layer)."""
        return self._snapshot[name].version

    def info(self) -> dict:
        """Observability: version, mutation counts, per-relation versions
        (the server's ``stats`` op includes this block)."""
        snapshot = self._snapshot
        return {
            "version": snapshot.version,
            "mutations": self._mutations,
            "inserted_rows": self._inserted_rows,
            "deleted_rows": self._deleted_rows,
            "relation_versions": {r.name: r.version for r in snapshot},
        }

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def apply(self, mutation: Mutation) -> MutationResult:
        """Commit one mutation; returns what it did and the new version.

        Atomic: the mutated relation is fully built and validated before
        anything is published, so a failing row (wrong arity, non-finite
        weight) leaves the current snapshot untouched.
        """
        with self._lock:
            current = self._snapshot
            name = mutation.relation
            if name not in current:
                raise MutationError(
                    f"cannot mutate unknown relation {name!r}; catalog has: "
                    f"{', '.join(current.names()) or '(empty database)'}"
                )
            next_version = current.version + 1  # type: ignore[operator]
            if isinstance(mutation, Insert):
                replacement, count = self._inserted(current[name], mutation)
                kind = "insert"
                self._inserted_rows += count
            elif isinstance(mutation, Delete):
                replacement, count = self._deleted(current[name], mutation)
                kind = "delete"
                self._deleted_rows += count
            else:
                raise MutationError(
                    f"unknown mutation type {type(mutation).__name__!r}"
                )
            replacement.version = next_version
            published = Database()
            for relation in current:
                published.add(
                    replacement if relation.name == name else relation
                )
            published.version = next_version
            self._snapshot = published
            self._mutations += 1
            return MutationResult(
                kind=kind, relation=name, rows=count, version=next_version
            )

    def apply_many(self, mutations: Iterable[Mutation]) -> list[MutationResult]:
        """Commit a batch in order; each mutation gets its own version."""
        return [self.apply(mutation) for mutation in mutations]

    @staticmethod
    def _inserted(relation: Relation, mutation: Insert) -> tuple[Relation, int]:
        replacement = relation.copy()
        try:
            for row, weight in zip(mutation.rows, mutation.weights):
                replacement.add(row, weight)
        except SchemaError as exc:
            raise MutationError(str(exc)) from exc
        return replacement, len(mutation.rows)

    @staticmethod
    def _deleted(relation: Relation, mutation: Delete) -> tuple[Relation, int]:
        replacement = Relation(relation.name, relation.schema)
        predicate = mutation.predicate
        if predicate is None:  # DELETE without WHERE: drop everything
            return replacement, len(relation)
        kept_rows: list[tuple] = []
        kept_weights: list[float] = []
        try:
            for row, weight in zip(relation.rows, relation.weights):
                if not predicate(row):
                    kept_rows.append(row)
                    kept_weights.append(weight)
        except Exception as exc:
            raise MutationError(
                f"delete predicate on {relation.name!r} failed: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        replacement.rows = kept_rows
        replacement.weights = kept_weights
        return replacement, len(relation) - len(kept_rows)

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def insert(
        self,
        relation: str,
        rows,
        weights=None,
    ) -> MutationResult:
        """Shorthand for :func:`repro.dynamic.mutations.insert` + apply."""
        from repro.dynamic.mutations import insert as make_insert

        return self.apply(make_insert(relation, rows, weights))

    def delete(
        self,
        relation: str,
        predicate=None,
        description: str = "",
    ) -> MutationResult:
        """Shorthand for building and applying a :class:`Delete`."""
        return self.apply(Delete(relation, predicate, description))

    def __repr__(self) -> str:
        snapshot = self._snapshot
        return (
            f"VersionedDatabase(version={snapshot.version}, "
            f"{len(snapshot)} relations, {self._mutations} mutations)"
        )
