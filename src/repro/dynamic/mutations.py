"""Mutation descriptions: the write half of the dynamic-data layer.

A mutation names one relation and either appends rows (:class:`Insert`)
or removes the rows matching a predicate (:class:`Delete`).  Mutations
are plain immutable descriptions — applying one is the job of
:class:`~repro.dynamic.versioned.VersionedDatabase`, which turns it into
a new copy-on-write snapshot and a fresh version id.  Keeping the
description separate from the application is what lets the SQL analyzer
compile ``INSERT``/``DELETE`` statements down to the same objects the
programmatic API uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence, Union


class MutationError(ValueError):
    """A mutation that cannot be applied (unknown relation, bad arity,
    non-finite weight, ...).  Always carries a clean human message — the
    server maps it onto the ``sql_error`` protocol code, never onto an
    internal traceback."""


@dataclass(frozen=True)
class Insert:
    """Append ``rows`` (with parallel ``weights``) to ``relation``."""

    relation: str
    rows: tuple[tuple, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.rows) != len(self.weights):
            raise MutationError(
                f"insert into {self.relation!r}: {len(self.rows)} rows but "
                f"{len(self.weights)} weights"
            )

    def __str__(self) -> str:
        return f"INSERT {len(self.rows)} row(s) INTO {self.relation}"


@dataclass(frozen=True)
class Delete:
    """Remove every row of ``relation`` matching ``predicate``.

    ``predicate`` takes a raw row tuple; ``description`` is the
    human-readable condition (shown in logs and results).  A ``None``
    predicate deletes every row (SQL's ``DELETE FROM r`` without WHERE).
    """

    relation: str
    predicate: Optional[Callable[[tuple], bool]] = None
    description: str = ""

    def __str__(self) -> str:
        where = f" WHERE {self.description}" if self.description else ""
        return f"DELETE FROM {self.relation}{where}"


Mutation = Union[Insert, Delete]


def insert(
    relation: str,
    rows: Iterable[Sequence[Any]],
    weights: Optional[Iterable[float]] = None,
) -> Insert:
    """Convenience factory: default every weight to 0.0 when omitted."""
    row_tuples = tuple(tuple(row) for row in rows)
    if weights is None:
        weight_tuple = (0.0,) * len(row_tuples)
    else:
        weight_tuple = tuple(float(w) for w in weights)
    return Insert(relation, row_tuples, weight_tuple)


@dataclass(frozen=True)
class MutationResult:
    """What a committed mutation did: kind, target, row count, and the
    snapshot version it published."""

    kind: str  # "insert" | "delete"
    relation: str
    rows: int
    version: int

    def __str__(self) -> str:
        verb = "inserted into" if self.kind == "insert" else "deleted from"
        return (
            f"{self.rows} row(s) {verb} {self.relation} "
            f"(now at version {self.version})"
        )
