"""Shared utilities: cost-model instrumentation and heap data structures.

The tutorial's central methodological point is that top-k and optimal-join
algorithms must be compared in the *same* model of computation (the standard
RAM model), rather than the access-count model in which the Threshold
Algorithm's optimality is stated.  :mod:`repro.util.counters` provides the
operation counters that every engine in this library reports, so that all
experiments can present RAM-model operation counts next to wall-clock time.

:mod:`repro.util.heaps` contains the priority-queue machinery used by the
any-k algorithms, including the incremental ("lazy") sorting structures that
back the different ``ANYK-PART`` successor strategies.

:mod:`repro.util.histogram` is the shared mergeable fixed-bucket latency
histogram (exact fold across threads and processes) behind the load
generator, the server's per-op latency stats, and the anytime-delay
profiler in :mod:`repro.obs`.
"""

from repro.util.counters import Counters, global_counters, reset_global_counters
from repro.util.histogram import DEFAULT_BOUNDS, Histogram, geometric_bounds
from repro.util.lru import LruCache
from repro.util.heaps import (
    BinaryHeap,
    IncrementalQuickSelect,
    LazySortedList,
    TournamentBucket,
)

__all__ = [
    "Counters",
    "DEFAULT_BOUNDS",
    "Histogram",
    "geometric_bounds",
    "LruCache",
    "global_counters",
    "reset_global_counters",
    "BinaryHeap",
    "LazySortedList",
    "IncrementalQuickSelect",
    "TournamentBucket",
]
