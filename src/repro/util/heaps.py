"""Priority-queue machinery for ranked enumeration.

The ``ANYK-PART`` family (tutorial Part 3, and the companion VLDB 2020 paper
the tutorial presents) differs only in *how the next-best alternative inside
a bucket of candidate tuples is found*.  This module provides the underlying
structures:

``BinaryHeap``
    A plain binary min-heap with operation counting; the global priority
    queue of every any-k algorithm.
``LazySortedList``
    Incremental heap-sort: a bucket whose sorted order is produced on demand,
    one element per (amortized) O(log b) pop.  Backs the ``Lazy`` (and, with
    sharing, ``Memoized``) successor strategies.
``IncrementalQuickSelect``
    Incremental quickselect (a.k.a. optimal incremental sorting): resolves
    the i-th smallest element lazily by maintaining a stack of pivot
    boundaries.  Backs the ``Quick`` successor strategy.
``TournamentBucket``
    A bucket heapified once in O(b); each element has at most two heap
    children that are no smaller than it.  Backs the ``Take2`` strategy, in
    which a popped solution spawns at most two sibling deviations.

All structures order elements by a caller-supplied key and break ties by
insertion order, so enumeration is deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.util.counters import Counters


class BinaryHeap:
    """Binary min-heap over ``(key, tiebreak, item)`` entries.

    A thin wrapper around :mod:`heapq` that (a) never compares payload items,
    only keys and an insertion-order tiebreak, (b) counts heap operations
    in an optional :class:`~repro.util.counters.Counters`, and (c) reports
    its entry count into an optional space gauge
    (:class:`repro.obs.memory.SpaceGauge`) so the memory profiler sees the
    queue's live/peak size without ever walking it.
    """

    def __init__(
        self, counters: Optional[Counters] = None, gauge: Any = None
    ) -> None:
        self._heap: list[tuple[Any, int, Any]] = []
        self._tick = 0
        self._counters = counters
        self._gauge = gauge

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, key: Any, item: Any) -> None:
        """Insert ``item`` with priority ``key``."""
        if self._counters is not None:
            self._counters.heap_ops += 1
        if self._gauge is not None:
            self._gauge.add(1)
        heapq.heappush(self._heap, (key, self._tick, item))
        self._tick += 1

    def pop(self) -> tuple[Any, Any]:
        """Remove and return ``(key, item)`` with the smallest key."""
        if not self._heap:
            raise IndexError("pop from empty heap")
        if self._counters is not None:
            self._counters.heap_ops += 1
        if self._gauge is not None:
            self._gauge.remove(1)
        key, _, item = heapq.heappop(self._heap)
        return key, item

    def peek(self) -> tuple[Any, Any]:
        """Return (without removing) the smallest ``(key, item)``."""
        if not self._heap:
            raise IndexError("peek at empty heap")
        key, _, item = self._heap[0]
        return key, item


class LazySortedList:
    """A sequence sorted incrementally, one element per request.

    ``get(i)`` returns the i-th smallest element (by ``key``), extending an
    internally materialized sorted prefix with heap pops as needed.  Asking
    for elements in increasing index order — the access pattern of Lawler-
    style successor queries — costs amortized O(log b) per element instead of
    the O(b log b) an eager sort pays up front.
    """

    def __init__(
        self,
        items: Iterable[Any],
        key: Callable[[Any], Any],
        counters: Optional[Counters] = None,
    ) -> None:
        self._counters = counters
        self._prefix: list[Any] = []
        self._heap: list[tuple[Any, int, Any]] = [
            (key(item), i, item) for i, item in enumerate(items)
        ]
        heapq.heapify(self._heap)
        if self._counters is not None:
            self._counters.heap_ops += len(self._heap)

    def __len__(self) -> int:
        return len(self._prefix) + len(self._heap)

    def get(self, index: int) -> Any:
        """Return the ``index``-th smallest element.

        Raises :class:`IndexError` when ``index`` is out of range, which the
        enumeration algorithms use to detect bucket exhaustion.
        """
        if index < 0:
            raise IndexError("negative index")
        while len(self._prefix) <= index:
            if not self._heap:
                raise IndexError("lazy sorted list exhausted")
            if self._counters is not None:
                self._counters.heap_ops += 1
            self._prefix.append(heapq.heappop(self._heap)[2])
        return self._prefix[index]

    def materialized(self) -> Sequence[Any]:
        """The sorted prefix produced so far (for inspection/tests)."""
        return tuple(self._prefix)


class IncrementalQuickSelect:
    """Incremental quickselect over a fixed array.

    Maintains the invariant that a stack of pivot boundaries partitions the
    array into blocks such that everything left of a boundary is no larger
    than everything right of it.  ``get(i)``, called with nondecreasing
    ``i``, quick-partitions only the block containing position ``i``;
    accessing all elements in order costs expected O(b log b) total but the
    first accesses are cheap — exactly the "pay as you go" behaviour the
    ``Quick`` any-k variant exploits.

    A deterministic median-of-three pivot keeps the structure reproducible
    without an RNG.
    """

    def __init__(
        self,
        items: Iterable[Any],
        key: Callable[[Any], Any],
        counters: Optional[Counters] = None,
    ) -> None:
        self._items = list(items)
        self._keys = [key(item) for item in self._items]
        self._counters = counters
        # Stack of exclusive right boundaries of fully-resolved prefixes;
        # the sentinel len(items) means "nothing to the right is resolved".
        self._bounds: list[int] = [len(self._items)]
        self._resolved = 0  # positions < _resolved hold their final element

    def __len__(self) -> int:
        return len(self._items)

    def _compare(self) -> None:
        if self._counters is not None:
            self._counters.comparisons += 1

    def _partition(self, lo: int, hi: int) -> int:
        """Partition ``items[lo:hi]`` around a median-of-three pivot."""
        keys, items = self._keys, self._items
        mid = (lo + hi - 1) // 2
        candidates = sorted(
            ((keys[i], i) for i in (lo, mid, hi - 1)), key=lambda pair: pair[0]
        )
        pivot_index = candidates[1][1]
        keys[pivot_index], keys[hi - 1] = keys[hi - 1], keys[pivot_index]
        items[pivot_index], items[hi - 1] = items[hi - 1], items[pivot_index]
        pivot_key = keys[hi - 1]
        store = lo
        for i in range(lo, hi - 1):
            self._compare()
            if keys[i] <= pivot_key:
                keys[i], keys[store] = keys[store], keys[i]
                items[i], items[store] = items[store], items[i]
                store += 1
        keys[store], keys[hi - 1] = keys[hi - 1], keys[store]
        items[store], items[hi - 1] = items[hi - 1], items[store]
        return store

    def get(self, index: int) -> Any:
        """Return the ``index``-th smallest element (stable under repeats)."""
        if index < 0 or index >= len(self._items):
            raise IndexError("quickselect index out of range")
        while self._resolved <= index:
            right = self._bounds[-1]
            lo = self._resolved
            if right - lo <= 1:
                # Single-element block: it is resolved by construction.
                self._resolved = right
                self._bounds.pop()
                continue
            pivot = self._partition(lo, right)
            if pivot == lo:
                # Pivot landed at the block start: position lo is final.
                self._resolved = lo + 1
            else:
                self._bounds.append(pivot)
        return self._items[index]


class TournamentBucket:
    """A bucket heapified into an implicit binary tournament.

    After O(b) heapify, element 0 is the bucket minimum and each position
    ``p`` has at most two children ``2p+1`` and ``2p+2`` that are no smaller.
    The ``Take2`` any-k variant replaces "next element in sorted order" with
    "the (at most two) heap children", so each popped solution inserts at
    most two new candidates into the global queue while global correctness is
    preserved by the heap-order property.
    """

    def __init__(
        self,
        items: Iterable[Any],
        key: Callable[[Any], Any],
        counters: Optional[Counters] = None,
    ) -> None:
        decorated = [(key(item), i, item) for i, item in enumerate(items)]
        heapq.heapify(decorated)
        if counters is not None:
            counters.heap_ops += len(decorated)
        self._entries = decorated

    def __len__(self) -> int:
        return len(self._entries)

    def root(self) -> Any:
        """The minimum element (position 0)."""
        if not self._entries:
            raise IndexError("empty tournament bucket")
        return self._entries[0][2]

    def item_at(self, position: int) -> Any:
        """Element stored at heap ``position``."""
        return self._entries[position][2]

    def key_at(self, position: int) -> Any:
        """Key of the element stored at heap ``position``."""
        return self._entries[position][0]

    def children(self, position: int) -> list[int]:
        """Heap child positions of ``position`` (zero, one, or two)."""
        result = []
        left = 2 * position + 1
        if left < len(self._entries):
            result.append(left)
            right = left + 1
            if right < len(self._entries):
                result.append(right)
        return result
