"""Mergeable fixed-bucket latency histograms.

The measurement primitive of the whole stack (promoted here from
``repro.workload`` so the server, the engine-side delay profiler, and
the metrics registry share one model): a histogram with *fixed,
geometric* bucket boundaries shared by every instance, so per-worker
shard histograms merge into a global one by plain element-wise
addition — no rebinning, no approximation drift.  That
merge-equals-global property is what lets each driver thread (or shard
worker process) record into a private histogram (no locks on the hot
path) and the consumer fold them at the end; it is property-tested in
``tests/test_histogram.py``.  :meth:`Histogram.to_dict` /
:meth:`Histogram.from_dict` carry the same fold across process
boundaries (``repro.parallel`` workers ship their delay profiles home
in the final queue frame).

Percentiles come back as the *upper edge* of the bucket containing the
requested rank, capped at the exact observed maximum (tracked alongside
the buckets).  Upper edges make the estimate conservative — a reported
p99 is never below the true p99 — and monotone in the quantile, the two
properties an SLO check needs.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from math import ceil
from typing import Optional, Sequence


def geometric_bounds(
    lo: float = 0.01, hi: float = 120_000.0, per_decade: int = 20
) -> tuple[float, ...]:
    """Geometric bucket upper edges from ``lo`` to at least ``hi`` (ms).

    ``per_decade`` buckets per 10x keeps the relative error of the
    upper-edge percentile estimate under ``10**(1/per_decade) - 1``
    (about 12% at the default), constant across seven decades from
    10 microseconds to two minutes.
    """
    if lo <= 0 or hi <= lo or per_decade < 1:
        raise ValueError("need 0 < lo < hi and per_decade >= 1")
    ratio = 10.0 ** (1.0 / per_decade)
    bounds = [lo]
    while bounds[-1] < hi:
        bounds.append(bounds[-1] * ratio)
    return tuple(bounds)


#: The default boundary set every histogram in the load generator uses.
#: One shared tuple means merges never have to compare boundary floats.
DEFAULT_BOUNDS = geometric_bounds()


class Histogram:
    """Counts of observations in fixed buckets, with exact count/sum/max.

    Bucket ``i`` holds values ``v`` with ``bounds[i-1] < v <= bounds[i]``
    (bucket 0 is everything up to ``bounds[0]``); one extra overflow
    bucket catches values beyond the last edge.  All instances built
    from the same ``bounds`` merge exactly.
    """

    __slots__ = ("bounds", "buckets", "count", "total", "max", "min")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        self.bounds = tuple(bounds)
        if not self.bounds or any(
            b <= a for a, b in zip(self.bounds, self.bounds[1:])
        ):
            raise ValueError("bounds must be non-empty and strictly increasing")
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.min = float("inf")

    # ------------------------------------------------------------------
    # Recording and merging
    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        """Count one observation (negative values clamp to zero)."""
        if value < 0:
            value = 0.0
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        if value < self.min:
            self.min = value

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into ``self`` (identical bounds required)."""
        if self.bounds != other.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds "
                f"({len(self.bounds)} vs {len(other.bounds)} edges)"
            )
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n
        self.count += other.count
        self.total += other.total
        if other.max > self.max:
            self.max = other.max
        if other.min < self.min:
            self.min = other.min
        return self

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def percentile(self, q: float) -> Optional[float]:
        """Upper-edge estimate of the ``q``-th percentile (None if empty).

        Monotone in ``q`` by construction: ranks grow with ``q``, bucket
        upper edges grow with rank, and the cap at the exact maximum is
        a constant.  Conservative: never underestimates.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return None
        # Nearest-rank definition: the smallest value with at least
        # ceil(q/100 * count) observations at or below it.
        rank = max(1, min(self.count, ceil(q * self.count / 100.0)))
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= rank:
                if i >= len(self.bounds):  # overflow bucket
                    return self.max
                return min(self.bounds[i], self.max)
        return self.max  # pragma: no cover - ranks never exceed count

    def count_le(self, threshold: float) -> int:
        """Observations known to be ``<= threshold`` (conservative).

        Only buckets whose *upper edge* is at or below the threshold
        count — a bucket straddling the threshold is excluded whole, so
        the "good events" count an SLO computes from this can never be
        inflated.  The complement ``count - count_le(t)`` is therefore a
        (possibly pessimistic) bad-event count.
        """
        return sum(self.buckets[: bisect_right(self.bounds, threshold)])

    def copy(self) -> "Histogram":
        """An independent clone (same bounds, same counts)."""
        clone = Histogram(self.bounds)
        clone.buckets = list(self.buckets)
        clone.count = self.count
        clone.total = self.total
        clone.max = self.max
        clone.min = self.min
        return clone

    def to_dict(self) -> dict:
        """A picklable/JSON-ready snapshot (exact, merge-preserving).

        Buckets are run-length sparse (``index: count``) because most of
        the ~140 geometric buckets are empty for any one workload.
        Bounds travel as the ``(lo, ratio, len)``-free full tuple only
        when they differ from :data:`DEFAULT_BOUNDS` — the common case
        costs a marker string instead of 140 floats per snapshot.
        """
        return {
            "bounds": "default" if self.bounds == DEFAULT_BOUNDS else list(self.bounds),
            "buckets": {i: n for i, n in enumerate(self.buckets) if n},
            "count": self.count,
            "total": self.total,
            "max": self.max,
            "min": self.min if self.count else None,
        }

    @classmethod
    def from_dict(cls, snapshot: dict) -> "Histogram":
        """Rebuild a histogram from :meth:`to_dict` output."""
        bounds = snapshot.get("bounds", "default")
        hist = cls(DEFAULT_BOUNDS if bounds == "default" else tuple(bounds))
        for index, n in snapshot.get("buckets", {}).items():
            hist.buckets[int(index)] = n
        hist.count = snapshot.get("count", 0)
        hist.total = snapshot.get("total", 0.0)
        hist.max = snapshot.get("max", 0.0)
        minimum = snapshot.get("min")
        hist.min = float("inf") if minimum is None else minimum
        return hist

    def summary(self) -> dict:
        """The JSON-ready digest the SLO report embeds per op."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean_ms": round(self.total / self.count, 4),
            "min_ms": round(self.min, 4),
            "max_ms": round(self.max, 4),
            "p50_ms": round(self.percentile(50), 4),
            "p95_ms": round(self.percentile(95), 4),
            "p99_ms": round(self.percentile(99), 4),
        }

    def __repr__(self) -> str:
        if self.count == 0:
            return "Histogram(empty)"
        return (
            f"Histogram(count={self.count}, p50={self.percentile(50):.3f}, "
            f"p99={self.percentile(99):.3f}, max={self.max:.3f})"
        )
