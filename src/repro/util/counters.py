"""RAM-model operation counters.

The tutorial argues (Sections 1 and 2) that analytical results for top-k
algorithms are usually stated in terms of the number of *input tuples
accessed*, while optimal-join research uses the standard RAM model that
charges O(1) per memory access and therefore also accounts for the cost of
large intermediate results.  To compare algorithms from both areas on equal
footing, every engine in this library reports its work through a
:class:`Counters` object.

Counters are deliberately coarse: they track the quantities the tutorial
talks about (tuples read, intermediate tuples materialized, comparisons,
sorted/random accesses, heap operations) rather than literal machine
operations.  Benchmarks report these counts as their primary series because
absolute Python wall-clock is not a faithful proxy for the authors' Java
testbed (see DESIGN.md, substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class Counters:
    """Mutable bundle of operation counts.

    Attributes
    ----------
    tuples_read:
        Input tuples touched (each scan of an input tuple counts once).
    intermediate_tuples:
        Tuples materialized in intermediate results (the quantity binary
        join plans blow up on for cyclic queries).
    output_tuples:
        Result tuples emitted.
    comparisons:
        Key/weight comparisons performed.
    hash_probes:
        Hash table lookups.
    sorted_accesses:
        Sorted accesses in the TA middleware cost model.
    random_accesses:
        Random accesses in the TA middleware cost model.
    heap_ops:
        Priority queue pushes/pops (the any-k delay driver).
    """

    tuples_read: int = 0
    intermediate_tuples: int = 0
    output_tuples: int = 0
    comparisons: int = 0
    hash_probes: int = 0
    sorted_accesses: int = 0
    random_accesses: int = 0
    heap_ops: int = 0
    extras: dict = field(default_factory=dict)

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            if f.name == "extras":
                self.extras.clear()
            else:
                setattr(self, f.name, 0)

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a named extra counter (created on first use)."""
        self.extras[name] = self.extras.get(name, 0) + amount

    def total_accesses(self) -> int:
        """Middleware cost: sorted plus random accesses (TA model)."""
        return self.sorted_accesses + self.random_accesses

    def total_work(self) -> int:
        """A single RAM-model-ish scalar: the sum of all counted operations.

        Useful for quick comparisons in benchmarks; individual counters are
        reported alongside it so no information is lost.
        """
        base = (
            self.tuples_read
            + self.intermediate_tuples
            + self.output_tuples
            + self.comparisons
            + self.hash_probes
            + self.sorted_accesses
            + self.random_accesses
            + self.heap_ops
        )
        return base + sum(self.extras.values())

    def snapshot(self) -> dict:
        """Return the counters as a plain dict (for bench reporting)."""
        out = {
            f.name: getattr(self, f.name) for f in fields(self) if f.name != "extras"
        }
        out.update(self.extras)
        out["total_work"] = self.total_work()
        return out

    def merge(self, other: "Counters") -> "Counters":
        """Add ``other``'s counts into ``self`` and return ``self``."""
        for f in fields(self):
            if f.name == "extras":
                for key, value in other.extras.items():
                    self.bump(key, value)
            else:
                setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self


#: Module-level counters used by engines when the caller does not supply
#: an explicit instance.  Benchmarks reset this between runs.
global_counters = Counters()


def reset_global_counters() -> Counters:
    """Reset and return the module-level :data:`global_counters`."""
    global_counters.reset()
    return global_counters
