"""RAM-model operation counters.

The tutorial argues (Sections 1 and 2) that analytical results for top-k
algorithms are usually stated in terms of the number of *input tuples
accessed*, while optimal-join research uses the standard RAM model that
charges O(1) per memory access and therefore also accounts for the cost of
large intermediate results.  To compare algorithms from both areas on equal
footing, every engine in this library reports its work through a
:class:`Counters` object.

Counters are deliberately coarse: they track the quantities the tutorial
talks about (tuples read, intermediate tuples materialized, comparisons,
sorted/random accesses, heap operations) rather than literal machine
operations.  Benchmarks report these counts as their primary series because
absolute Python wall-clock is not a faithful proxy for the authors' Java
testbed (see DESIGN.md, substitution table).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields


@dataclass
class Counters:
    """Mutable bundle of operation counts.

    Thread-safety contract: the hot-path idiom ``counters.heap_ops += 1``
    stays a plain attribute bump (engines are single-threaded per
    invocation and own a private instance), while every *shared* update
    path — :meth:`bump`, :meth:`add`, :meth:`merge`, :meth:`reset` — and
    the consistent readers :meth:`snapshot` / :meth:`total_work` take an
    internal lock.  Concurrent sessions (the :mod:`repro.server` regime)
    therefore count into private instances and :meth:`merge` them into a
    shared aggregate without losing updates.

    Attributes
    ----------
    tuples_read:
        Input tuples touched (each scan of an input tuple counts once).
    intermediate_tuples:
        Tuples materialized in intermediate results (the quantity binary
        join plans blow up on for cyclic queries).
    output_tuples:
        Result tuples emitted.
    comparisons:
        Key/weight comparisons performed.
    hash_probes:
        Hash table lookups.
    sorted_accesses:
        Sorted accesses in the TA middleware cost model.
    random_accesses:
        Random accesses in the TA middleware cost model.
    heap_ops:
        Priority queue pushes/pops (the any-k delay driver).
    """

    tuples_read: int = 0
    intermediate_tuples: int = 0
    output_tuples: int = 0
    comparisons: int = 0
    hash_probes: int = 0
    sorted_accesses: int = 0
    random_accesses: int = 0
    heap_ops: int = 0
    extras: dict = field(default_factory=dict)
    #: Named duration observations as ``name -> [count, total, max]``.
    #: Updated via :meth:`observe`, summarized via :meth:`timing_summary`;
    #: excluded from :meth:`snapshot` / :meth:`total_work` because a
    #: latency is not a RAM-model operation count.
    timings: dict = field(default_factory=dict)
    #: Guards every cross-thread update/read path.  ``repr=False`` keeps
    #: dataclass rendering clean; ``compare=False`` keeps equality on the
    #: counts themselves.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def reset(self) -> None:
        """Zero every counter in place (atomic)."""
        with self._lock:
            for f in fields(self):
                if f.name == "extras":
                    self.extras.clear()
                elif f.name == "timings":
                    self.timings.clear()
                elif f.name != "_lock":
                    setattr(self, f.name, 0)

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a named extra counter (created on first use, atomic)."""
        with self._lock:
            self.extras[name] = self.extras.get(name, 0) + amount

    def add(self, name: str, amount: int = 1) -> None:
        """Atomically increment a *field* counter by name.

        The thread-safe alternative to ``counters.tuples_read += 1`` for
        instances shared across threads (server-wide aggregates).
        """
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def observe(self, name: str, value: float) -> None:
        """Record one duration/size observation under ``name`` (atomic).

        Keeps ``(count, total, max)`` per name — enough for the
        count/mean/max summaries the server's ``stats`` op reports —
        without unbounded per-sample storage.  Full percentile tracking
        lives in :class:`repro.util.histogram.Histogram`; this is the
        always-on, O(1)-memory server-side companion.
        """
        with self._lock:
            entry = self.timings.get(name)
            if entry is None:
                self.timings[name] = [1, value, value]
            else:
                entry[0] += 1
                entry[1] += value
                if value > entry[2]:
                    entry[2] = value

    def timing_summary(self) -> dict:
        """``{name: {"count", "mean", "max"}}`` for every observed name.

        Taken under the lock; values are plain floats, JSON-ready (the
        ``stats`` op embeds this as ``op_latency_ms``).
        """
        with self._lock:
            return {
                name: {
                    "count": count,
                    "mean": total / count if count else 0.0,
                    "max": maximum,
                }
                for name, (count, total, maximum) in self.timings.items()
            }

    def total_accesses(self) -> int:
        """Middleware cost: sorted plus random accesses (TA model)."""
        with self._lock:
            return self.sorted_accesses + self.random_accesses

    def total_work(self) -> int:
        """A single RAM-model-ish scalar: the sum of all counted operations.

        Useful for quick comparisons in benchmarks; individual counters are
        reported alongside it so no information is lost.  Taken under the
        lock so a read racing a concurrent :meth:`merge` never sees a
        partially-merged sum.
        """
        with self._lock:
            return self._total_work_locked()

    def _total_work_locked(self) -> int:
        base = (
            self.tuples_read
            + self.intermediate_tuples
            + self.output_tuples
            + self.comparisons
            + self.hash_probes
            + self.sorted_accesses
            + self.random_accesses
            + self.heap_ops
        )
        return base + sum(self.extras.values())

    def snapshot(self) -> dict:
        """Return the counters as a plain dict (for bench reporting).

        Taken under the lock, so a snapshot racing concurrent
        :meth:`add`/:meth:`bump`/:meth:`merge` calls is internally
        consistent.
        """
        with self._lock:
            out = {
                f.name: getattr(self, f.name)
                for f in fields(self)
                if f.name not in ("extras", "timings", "_lock")
            }
            out.update(self.extras)
        out["total_work"] = sum(v for v in out.values())
        return out

    def merge(self, other: "Counters") -> "Counters":
        """Add ``other``'s counts into ``self`` and return ``self``.

        Atomic on ``self``; ``other`` must be quiescent (no concurrent
        writers) while merged — the per-session-then-aggregate pattern
        guarantees that.
        """
        with self._lock:
            for f in fields(self):
                if f.name == "extras":
                    for key, value in other.extras.items():
                        self.extras[key] = self.extras.get(key, 0) + value
                elif f.name == "timings":
                    for key, (count, total, maximum) in other.timings.items():
                        entry = self.timings.get(key)
                        if entry is None:
                            self.timings[key] = [count, total, maximum]
                        else:
                            entry[0] += count
                            entry[1] += total
                            if maximum > entry[2]:
                                entry[2] = maximum
                elif f.name != "_lock":
                    setattr(
                        self, f.name, getattr(self, f.name) + getattr(other, f.name)
                    )
        return self


#: Module-level counters used by engines when the caller does not supply
#: an explicit instance.  Benchmarks reset this between runs.
global_counters = Counters()


def reset_global_counters() -> Counters:
    """Reset and return the module-level :data:`global_counters`."""
    global_counters.reset()
    return global_counters
