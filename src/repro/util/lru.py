"""A bounded, thread-safe LRU map with hit/miss accounting.

The one cache shape this library keeps reaching for — the fractional-cover
LP memo, the router's cached-stats catalog, the server's plan cache —
extracted so eviction and accounting live in exactly one place.  Plain
``get``/``put`` (no ``__missing__`` magic): callers decide what a miss
costs and whether to store the result.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional


class LruCache:
    """Least-recently-used mapping bounded at ``maxsize`` entries."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("an LRU cache needs room for at least one entry")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value (freshened to most-recent), or None."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh a value, evicting the least-recent overflow."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def info(self) -> dict:
        """Size and hit/miss counts (the shape stats endpoints report)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "maxsize": self.maxsize,
            }
