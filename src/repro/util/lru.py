"""A bounded, thread-safe LRU map with hit/miss accounting.

The one cache shape this library keeps reaching for — the fractional-cover
LP memo, the router's cached-stats catalog, the server's plan cache —
extracted so eviction and accounting live in exactly one place.  Plain
``get``/``put`` (no ``__missing__`` magic): callers decide what a miss
costs and whether to store the result.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional


class LruCache:
    """Least-recently-used mapping bounded at ``maxsize`` entries."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("an LRU cache needs room for at least one entry")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get(
        self,
        key: Hashable,
        on_hit: Optional[Callable[[Any], None]] = None,
    ) -> Optional[Any]:
        """The cached value (freshened to most-recent), or None.

        ``on_hit`` runs on the value *under the cache lock*, so per-entry
        accounting (e.g. a hit counter on the value itself) is atomic
        with respect to concurrent lookups — a racy ``entry.hits += 1``
        outside the lock loses increments.
        """
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            if on_hit is not None:
                on_hit(value)
            return value

    def reclassify_hit_as_miss(self) -> None:
        """Turn one recorded hit into a miss.

        For validate-on-hit callers: a lookup that found an entry which
        then failed validation (e.g. a stale plan needing a full re-cost)
        did not save the caller any work, so it should count as a miss in
        the hit-rate arithmetic.
        """
        with self._lock:
            if self.hits > 0:
                self.hits -= 1
            self.misses += 1

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh a value, evicting the least-recent overflow."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def info(self) -> dict:
        """Size and hit/miss counts (the shape stats endpoints report)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "maxsize": self.maxsize,
            }
